package runner

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"wlcache/internal/sim"
)

// fakeResult builds a distinct, deterministic result per cell index,
// with non-trivial float bit patterns so round-trip comparisons mean
// something.
func fakeResult(i int) sim.Result {
	r := sim.Result{
		Design:       fmt.Sprintf("d%d", i),
		Workload:     fmt.Sprintf("w%d", i),
		Trace:        "tr1",
		ExecTime:     int64(1000 + i),
		Instructions: uint64(7 * i),
		Outages:      uint64(i % 5),
		Checksum:     uint32(0xdead0000 + i),
	}
	r.Energy.Compute = 1.0 / float64(i+3)
	r.ReserveWasted = 3.14159e-9 * float64(i+1)
	r.Extra.Writebacks = uint64(i * i)
	return r
}

// okCell computes fakeResult(i).
func okCell(i int) Cell {
	return Cell{
		ID:          fmt.Sprintf("cell-%d", i),
		Fingerprint: fmt.Sprintf("fp-%d", i),
		Run:         func(context.Context) (sim.Result, error) { return fakeResult(i), nil },
	}
}

func TestRunCellsComputesAll(t *testing.T) {
	cells := make([]Cell, 20)
	for i := range cells {
		cells[i] = okCell(i)
	}
	rep, err := RunCells(context.Background(), Config{Workers: 4, Engine: "test"}, cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if rep.Results[i] != fakeResult(i) {
			t.Fatalf("cell %d: result %+v", i, rep.Results[i])
		}
	}
	if rep.Metrics.Computed != 20 || rep.Metrics.FromJournal != 0 || rep.Metrics.Failed != 0 {
		t.Fatalf("metrics %+v", rep.Metrics)
	}
}

// The aggregate error must be the first failing cell by submission
// index — not whichever worker lost the race — and every completed
// result must still be returned.
func TestFirstErrorByIndexIsDeterministic(t *testing.T) {
	boom := errors.New("boom")
	for trial := 0; trial < 20; trial++ {
		cells := make([]Cell, 16)
		for i := range cells {
			i := i
			if i == 3 || i == 11 {
				// Later-indexed failure (11) completes much faster
				// than 3 — a race-dependent aggregator would report
				// it first.
				delay := 20 * time.Millisecond
				if i == 11 {
					delay = 0
				}
				cells[i] = Cell{
					ID: fmt.Sprintf("cell-%d", i),
					Run: func(context.Context) (sim.Result, error) {
						time.Sleep(delay)
						return sim.Result{}, fmt.Errorf("%w (cell %d)", boom, i)
					},
				}
				continue
			}
			cells[i] = okCell(i)
		}
		rep, err := RunCells(context.Background(), Config{Workers: 8, Engine: "test"}, cells)
		if err == nil {
			t.Fatal("failing sweep returned nil error")
		}
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("error %T does not attribute a cell: %v", err, err)
		}
		if ce.Index != 3 || ce.ID != "cell-3" {
			t.Fatalf("trial %d: aggregate error picked cell %d (%s), want deterministic first-by-index 3", trial, ce.Index, ce.ID)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("cause not preserved: %v", err)
		}
		// Completed results ride along with the error.
		if rep.Results[5] != fakeResult(5) {
			t.Fatalf("trial %d: completed result 5 missing: %+v", trial, rep.Results[5])
		}
		if rep.Metrics.Failed != 2 || rep.Metrics.Computed != 14 {
			t.Fatalf("metrics %+v", rep.Metrics)
		}
	}
}

// A panicking cell becomes a typed, cell-attributed error; the rest of
// the sweep completes.
func TestPanicIsolation(t *testing.T) {
	cells := []Cell{
		okCell(0),
		{ID: "poisoned", Run: func(context.Context) (sim.Result, error) { panic("kaboom") }},
		okCell(2),
	}
	rep, err := RunCells(context.Background(), Config{Workers: 2, Engine: "test"}, cells)
	if err == nil {
		t.Fatal("panicking sweep returned nil error")
	}
	if !errors.Is(err, ErrCellPanic) {
		t.Fatalf("panic not typed: %v", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.ID != "poisoned" {
		t.Fatalf("panic not attributed to the offending cell: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("panic payload lost: %v", err)
	}
	if rep.Results[0] != fakeResult(0) || rep.Results[2] != fakeResult(2) {
		t.Fatal("panic took down healthy cells")
	}
	if rep.Metrics.Panics != 1 {
		t.Fatalf("metrics %+v", rep.Metrics)
	}
}

// Optional cells may fail without failing the sweep; their result
// stays zero.
func TestOptionalFailureTolerated(t *testing.T) {
	cells := []Cell{
		okCell(0),
		{ID: "infeasible", Optional: true, Run: func(context.Context) (sim.Result, error) {
			return sim.Result{}, errors.New("cannot charge reserve")
		}},
	}
	rep, err := RunCells(context.Background(), Config{Workers: 2, Engine: "test"}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errs[1] == nil || rep.Results[1] != (sim.Result{}) {
		t.Fatalf("optional failure not recorded: errs=%v", rep.Errs)
	}
	if rep.Metrics.OptionalFailed != 1 {
		t.Fatalf("metrics %+v", rep.Metrics)
	}
}

// Transient failures retry with backoff until they succeed; permanent
// failures do not retry.
func TestTransientRetry(t *testing.T) {
	var attempts, permTries atomic.Int64
	cells := []Cell{
		{ID: "flaky", Run: func(context.Context) (sim.Result, error) {
			if attempts.Add(1) < 3 {
				return sim.Result{}, fmt.Errorf("%w: io hiccup", ErrTransient)
			}
			return fakeResult(0), nil
		}},
		{ID: "perm", Optional: true, Run: func(context.Context) (sim.Result, error) {
			permTries.Add(1)
			return sim.Result{}, errors.New("deterministic failure")
		}},
	}
	rep, err := RunCells(context.Background(), Config{
		Workers: 1, Engine: "test", MaxAttempts: 5,
		BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
	}, cells)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0] != fakeResult(0) {
		t.Fatal("flaky cell did not recover")
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("flaky cell ran %d times, want 3", got)
	}
	if got := permTries.Load(); got != 1 {
		t.Fatalf("permanent failure retried %d times, want 1", got)
	}
	if rep.Metrics.Retries != 2 {
		t.Fatalf("metrics %+v", rep.Metrics)
	}
}

// A transient cell that never recovers exhausts MaxAttempts and
// surfaces the last error.
func TestTransientExhaustion(t *testing.T) {
	var tries atomic.Int64
	cells := []Cell{{ID: "hopeless", Run: func(context.Context) (sim.Result, error) {
		tries.Add(1)
		return sim.Result{}, fmt.Errorf("%w: still down", ErrTransient)
	}}}
	_, err := RunCells(context.Background(), Config{
		Workers: 1, Engine: "test", MaxAttempts: 3,
		BackoffBase: time.Millisecond, BackoffMax: time.Millisecond,
	}, cells)
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	if got := tries.Load(); got != 3 {
		t.Fatalf("ran %d times, want 3", got)
	}
}

// Cancellation degrades gracefully: started cells finish, unstarted
// cells become deterministic typed skips, and the sweep reports rather
// than hangs or aborts.
func TestCancellationSkipsDeterministically(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{})
	var started atomic.Int64
	cells := make([]Cell, 12)
	for i := range cells {
		i := i
		cells[i] = Cell{
			ID: fmt.Sprintf("cell-%d", i),
			Run: func(context.Context) (sim.Result, error) {
				if started.Add(1) == 2 {
					cancel()
				}
				<-release
				return fakeResult(i), nil
			},
		}
	}
	go func() {
		// Free the in-flight cells once cancellation has landed.
		<-ctx.Done()
		close(release)
	}()
	rep, err := RunCells(ctx, Config{Workers: 2, Engine: "test"}, cells)
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if rep.Metrics.Skipped == 0 {
		t.Fatalf("no skips recorded: %+v", rep.Metrics)
	}
	if rep.Metrics.Computed+rep.Metrics.Skipped != len(cells) {
		t.Fatalf("cells unaccounted: %+v", rep.Metrics)
	}
	for i, cerr := range rep.Errs {
		if cerr != nil && !errors.Is(cerr, ErrSkipped) {
			t.Fatalf("cell %d: unexpected error class: %v", i, cerr)
		}
		if cerr != nil && !errors.Is(cerr, context.Canceled) {
			t.Fatalf("cell %d: skip does not carry the cancellation cause: %v", i, cerr)
		}
	}
}

// A per-cell deadline budget stops retrying a transient cell.
func TestCellBudgetBoundsRetries(t *testing.T) {
	var tries atomic.Int64
	cells := []Cell{{ID: "slow-flaky", Run: func(context.Context) (sim.Result, error) {
		tries.Add(1)
		return sim.Result{}, fmt.Errorf("%w: down", ErrTransient)
	}}}
	_, err := RunCells(context.Background(), Config{
		Workers: 1, Engine: "test", MaxAttempts: 1000,
		BackoffBase: 20 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
		CellBudget: 50 * time.Millisecond,
	}, cells)
	if err == nil {
		t.Fatal("budget-exceeded cell returned nil error")
	}
	if got := tries.Load(); got >= 1000 {
		t.Fatalf("budget did not bound retries (%d tries)", got)
	}
}

// Two cells with identical fingerprints dedupe within one run: the
// second serves from the in-run cache.
func TestInRunDedup(t *testing.T) {
	var computes atomic.Int64
	mk := func(id string) Cell {
		return Cell{ID: id, Fingerprint: "same-fp", Run: func(context.Context) (sim.Result, error) {
			computes.Add(1)
			return fakeResult(7), nil
		}}
	}
	rep, err := RunCells(context.Background(), Config{Workers: 1, Engine: "test"}, []Cell{mk("a"), mk("b")})
	if err != nil {
		t.Fatal(err)
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want 1", got)
	}
	if rep.Results[0] != fakeResult(7) || rep.Results[1] != fakeResult(7) {
		t.Fatal("dedup lost a result")
	}
	if rep.Metrics.Deduped != 1 {
		t.Fatalf("metrics %+v", rep.Metrics)
	}
}

// Journaled cells are served on the next run with zero recomputation;
// cells with an empty fingerprint are never journaled.
func TestJournalRoundTrip(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	var computes atomic.Int64
	mkCells := func() []Cell {
		cells := make([]Cell, 6)
		for i := range cells {
			i := i
			cells[i] = Cell{
				ID:          fmt.Sprintf("cell-%d", i),
				Fingerprint: fmt.Sprintf("fp-%d", i),
				Run: func(context.Context) (sim.Result, error) {
					computes.Add(1)
					return fakeResult(i), nil
				},
			}
		}
		cells[5].Fingerprint = "" // live-hook cell: never journaled
		return cells
	}
	cfg := Config{Workers: 3, Engine: "test", JournalPath: journal}

	rep1, err := RunCells(context.Background(), cfg, mkCells())
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Metrics.Computed != 6 || rep1.Metrics.FromJournal != 0 {
		t.Fatalf("first pass metrics %+v", rep1.Metrics)
	}

	computes.Store(0)
	rep2, err := RunCells(context.Background(), cfg, mkCells())
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Metrics.FromJournal != 5 {
		t.Fatalf("served %d from journal, want 5: %+v", rep2.Metrics.FromJournal, rep2.Metrics)
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("recomputed %d cells, want 1 (the unaddressable one)", got)
	}
	for i := 0; i < 6; i++ {
		if rep2.Results[i] != fakeResult(i) {
			t.Fatalf("cell %d served wrong result: %+v", i, rep2.Results[i])
		}
	}
}

// A different engine version invalidates every journaled record: the
// addresses cannot match, and the journal restarts for the new engine.
func TestEngineVersionInvalidatesJournal(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	cells := []Cell{okCell(0)}
	if _, err := RunCells(context.Background(), Config{Workers: 1, Engine: "v1", JournalPath: journal}, cells); err != nil {
		t.Fatal(err)
	}
	rep, err := RunCells(context.Background(), Config{Workers: 1, Engine: "v2", JournalPath: journal}, []Cell{okCell(0)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.FromJournal != 0 || rep.Metrics.Computed != 1 {
		t.Fatalf("stale engine served from journal: %+v", rep.Metrics)
	}
	if !rep.Metrics.Journal.EngineMismatch {
		t.Fatalf("engine mismatch not reported: %+v", rep.Metrics.Journal)
	}
}

func TestAddressIsStableAndDiscriminating(t *testing.T) {
	a := Address("e1", "fp")
	if a != Address("e1", "fp") {
		t.Fatal("address not deterministic")
	}
	if a == Address("e2", "fp") {
		t.Fatal("engine version not mixed into address")
	}
	if a == Address("e1", "fp2") {
		t.Fatal("fingerprint not mixed into address")
	}
	if len(a) != 64 {
		t.Fatalf("address %q not a hex sha256", a)
	}
}
