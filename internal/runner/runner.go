// Package runner is the crash-resumable sweep execution substrate: a
// bounded worker pool that drains a matrix of simulation cells,
// content-addresses every cell (hash of the caller's canonical design
// config + workload + trace fingerprint, mixed with the engine
// version), and journals each completed sim.Result to an append-only,
// fsync'd JSONL file (wlrun/v1). A sweep killed at any instant —
// SIGKILL, panic, power loss — resumes by reloading the journal:
// journaled cells are served back by hash with zero recomputation, a
// torn final record is discarded rather than fatal, and only the
// missing cells run.
//
// The package applies the same intermittent-computing discipline the
// repo's internal/fault audit enforces on the *simulated* designs to
// the simulator's own execution: all work is idempotent, persistence
// is small and incremental, and recovery is verified (addresses are
// recomputed on reload, so a stale or tampered record is recomputed,
// never served).
//
// Failure handling degrades gracefully instead of aborting: per-cell
// panics are recovered into typed errors carrying the cell's identity,
// transient failures retry with capped exponential backoff, and
// cancellation (or a per-cell deadline budget) converts the remaining
// cells into deterministic skip errors. The aggregate error is always
// the first failing cell by submission index — never a scheduling
// race.
package runner

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"wlcache/internal/obs"
	"wlcache/internal/sim"
)

// Cell is one unit of sweep work.
type Cell struct {
	// ID is the human-readable identity used in error messages,
	// conventionally "design/workload/trace".
	ID string
	// Fingerprint is the canonical serialization of everything that
	// determines the cell's result (design config, workload, scale,
	// trace parameters). Cells with equal fingerprints are assumed
	// interchangeable. Empty means the cell is not content-addressable
	// (e.g. it carries live hooks); it always recomputes and is never
	// journaled.
	Fingerprint string
	// Optional cells may fail: their Result stays zero and their error
	// is recorded but does not fail the sweep.
	Optional bool
	// Run computes the cell. The context carries sweep cancellation
	// plus the per-cell deadline budget; the simulator itself is not
	// preemptible, so the budget bounds retries and start times, not a
	// single in-flight simulation.
	Run func(ctx context.Context) (sim.Result, error)
}

// Config tunes a sweep.
type Config struct {
	// Workers bounds the worker pool (0 = NumCPU).
	Workers int
	// Engine is the engine version mixed into content addresses
	// (conventionally sim.EngineVersion).
	Engine string
	// JournalPath enables crash-resumable persistence ("" = off).
	JournalPath string
	// MaxAttempts bounds tries per cell for transient failures
	// (0 = 3). Permanent failures never retry.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between transient retries (0 = 10ms / 1s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// CellBudget is the per-cell deadline (0 = none).
	CellBudget time.Duration
	// Retryable classifies errors as transient (nil = errors wrapping
	// ErrTransient).
	Retryable func(error) bool
	// AfterJournal, when set, runs after the n-th record of this run
	// becomes durable, under the journal's append lock. The chaos
	// harness kills the process here to get a bit-exactly known
	// journal state.
	AfterJournal func(n int)
	// Shared, when set, is a cross-sweep single-flight result store:
	// content-addressable cells are served from it when already
	// published, and concurrent sweeps racing on the same address
	// compute it exactly once. Cells served from the shared store are
	// NOT appended to this sweep's journal — the sweep that computed
	// them journaled them, and a restarted server reloads every journal
	// into the store.
	Shared *Flight
	// OnCell, when set, is invoked once per submitted cell as its
	// outcome becomes known, carrying the result (or error) and where
	// it came from. It may be called concurrently from worker
	// goroutines; the sweep service uses it to stream per-cell results
	// to clients as they land.
	OnCell func(done CellDone)
	// Obs, when set, receives journal-reload metrics
	// (runner.journal.records / dropped_records / torn_tail_bytes).
	// It is written once, before any workers start, on the calling
	// goroutine.
	Obs *obs.Registry
	// ObserveFsync, when set, receives the duration of each journal
	// append's fsync — the durability tax every computed cell pays. It
	// runs under the journal's append lock; keep it cheap.
	ObserveFsync func(d time.Duration)
}

// CellSource says where a cell's outcome came from.
type CellSource string

// The cell outcome sources.
const (
	SourceJournal  CellSource = "journal"  // reloaded from this sweep's journal
	SourceShared   CellSource = "shared"   // served by the cross-sweep shared store
	SourceDedup    CellSource = "dedup"    // identical cell completed earlier in this run
	SourceComputed CellSource = "computed" // executed in this run
	SourceFailed   CellSource = "failed"   // permanent failure
	SourceSkipped  CellSource = "skipped"  // never attempted (cancellation / deadline)
)

// CellDone reports one finished cell to Config.OnCell.
type CellDone struct {
	Index  int
	ID     string
	Result sim.Result
	Err    error
	Source CellSource

	// Wait is how long the cell sat in the worker queue before a
	// worker picked it up (zero for journal-served cells, which never
	// reach the pool).
	Wait time.Duration
	// Dur is the wall time from worker pickup to outcome: compute time
	// for computed cells, the wait on another sweep's in-flight compute
	// for shared serves, ~zero for in-run dedup hits.
	Dur time.Duration
	// Attempts counts Run invocations, including transient retries
	// (zero when the cell never ran: journal/shared/dedup serves and
	// skips).
	Attempts int
}

func (c Config) normalize() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.Retryable == nil {
		c.Retryable = func(err error) bool { return errors.Is(err, ErrTransient) }
	}
	return c
}

// Metrics counts what a sweep did — the resume proof reads these:
// FromJournal must equal the journaled population and Computed must
// cover exactly the rest.
type Metrics struct {
	Cells          int // submitted
	FromJournal    int // served from the reloaded journal, no recompute
	FromShared     int // served from the cross-sweep shared store, no recompute
	Deduped        int // served from an identical cell completed earlier in this run
	Computed       int // executed to success in this run
	Failed         int // permanent failure of a required cell
	OptionalFailed int // permanent failure of an optional cell (zero Result)
	Skipped        int // never attempted (cancellation / deadline)
	Retries        int // transient re-attempts
	Panics         int // recovered cell panics
	Journal        LoadStats
}

// Report is everything a sweep produced. Results and Errs are indexed
// like the submitted cells; failed or skipped cells hold a zero Result
// and a *CellError.
type Report struct {
	Results []sim.Result
	Errs    []error
	Metrics Metrics

	// optional mirrors the submitted cells' Optional flags so FirstErr
	// can skip tolerated failures.
	optional []bool
}

// FirstErr returns the deterministic aggregate error: the failure of
// the lowest-index non-optional cell, or nil.
func (r *Report) FirstErr() error {
	for i, err := range r.Errs {
		if err != nil && !r.optional[i] {
			return err
		}
	}
	return nil
}

// RunCells executes the sweep and returns the report plus the
// deterministic aggregate error (first failing required cell by index,
// or a journal infrastructure error). The report is always populated:
// a failing sweep still carries every completed result.
func RunCells(ctx context.Context, cfg Config, cells []Cell) (Report, error) {
	cfg = cfg.normalize()
	if ctx == nil {
		ctx = context.Background()
	}
	rep := Report{
		Results:  make([]sim.Result, len(cells)),
		Errs:     make([]error, len(cells)),
		optional: make([]bool, len(cells)),
	}
	rep.Metrics.Cells = len(cells)
	for i, c := range cells {
		rep.optional[i] = c.Optional
	}

	var journal *Journal
	cache := make(map[string]sim.Result)
	if cfg.JournalPath != "" {
		var stats LoadStats
		var err error
		journal, cache, stats, err = OpenJournal(cfg.JournalPath, cfg.Engine)
		if err != nil {
			return rep, err
		}
		defer journal.Close()
		journal.afterAppend = cfg.AfterJournal
		journal.observeFsync = cfg.ObserveFsync
		rep.Metrics.Journal = stats
		if cfg.Obs != nil {
			cfg.Obs.Counter("runner.journal.records", obs.DirNone).Add(uint64(stats.Records))
			cfg.Obs.Counter("runner.journal.dropped_records", obs.DirLower).Add(uint64(stats.Dropped))
			cfg.Obs.Counter("runner.journal.torn_tail_bytes", obs.DirLower).Add(uint64(stats.TornTailBytes))
		}
	}

	emit := func(i int, res sim.Result, err error, src CellSource, wait, dur time.Duration, attempts int) {
		if cfg.OnCell != nil {
			cfg.OnCell(CellDone{Index: i, ID: cells[i].ID, Result: res, Err: err, Source: src,
				Wait: wait, Dur: dur, Attempts: attempts})
		}
	}

	// Serve journaled cells first: zero recomputation, no worker
	// involvement, deterministic regardless of pool scheduling.
	addrs := make([]string, len(cells))
	pending := make([]int, 0, len(cells))
	for i, c := range cells {
		if c.Fingerprint != "" {
			addrs[i] = Address(cfg.Engine, c.Fingerprint)
			if res, ok := cache[addrs[i]]; ok {
				rep.Results[i] = res
				rep.Metrics.FromJournal++
				emit(i, res, nil, SourceJournal, 0, 0, 0)
				continue
			}
		}
		pending = append(pending, i)
	}

	var (
		mu        sync.Mutex // guards cache and journErr beyond this point
		counters  struct{ computed, failed, optFailed, skipped, retries, panics, deduped, fromShared atomic.Int64 }
		journErr  error // first journal append error
		attempted = make([]atomic.Bool, len(cells))
	)

	workers := cfg.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	idx := make(chan int)
	poolStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain; unattempted cells become skips below
				}
				attempted[i].Store(true)
				c := cells[i]
				// Every pending cell was runnable the moment the pool
				// started; pickup minus pool start is its queue wait.
				pick := time.Now()
				wait := pick.Sub(poolStart)

				// A cell identical to one computed earlier in this
				// run is served from the in-run cache.
				if addrs[i] != "" {
					mu.Lock()
					res, ok := cache[addrs[i]]
					mu.Unlock()
					if ok {
						rep.Results[i] = res
						counters.deduped.Add(1)
						emit(i, res, nil, SourceDedup, wait, time.Since(pick), 0)
						continue
					}
				}

				var res sim.Result
				var err error
				attempts := 0
				src := SourceComputed
				if cfg.Shared != nil && addrs[i] != "" {
					var computed bool
					res, computed, err = cfg.Shared.Do(ctx, addrs[i], func() (sim.Result, error) {
						r, n, e := runCell(ctx, cfg, c, &counters.retries, &counters.panics)
						attempts += n
						return r, e
					})
					if err == nil && !computed {
						src = SourceShared
					}
				} else {
					res, attempts, err = runCell(ctx, cfg, c, &counters.retries, &counters.panics)
				}
				dur := time.Since(pick)
				if err != nil {
					rep.Errs[i] = &CellError{Index: i, ID: c.ID, Err: err}
					if c.Optional {
						counters.optFailed.Add(1)
					} else {
						counters.failed.Add(1)
					}
					emit(i, sim.Result{}, rep.Errs[i], SourceFailed, wait, dur, attempts)
					continue
				}
				rep.Results[i] = res
				if src == SourceShared {
					// Another sweep computed (and journaled) this cell;
					// serving it here is pure dedup, not new work.
					counters.fromShared.Add(1)
				} else {
					counters.computed.Add(1)
					if journal != nil && addrs[i] != "" {
						if aerr := journal.Append(addrs[i], c.ID, c.Fingerprint, res); aerr != nil {
							mu.Lock()
							if journErr == nil {
								journErr = aerr
							}
							mu.Unlock()
						}
					}
				}
				if addrs[i] != "" {
					mu.Lock()
					cache[addrs[i]] = res
					mu.Unlock()
				}
				emit(i, res, nil, src, wait, time.Since(pick), attempts)
			}
		}()
	}
feed:
	for _, i := range pending {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	// Cells never handed to (or declined by) a worker are deterministic
	// skips, not silent holes.
	for _, i := range pending {
		if !attempted[i].Load() {
			cause := context.Cause(ctx)
			if cause == nil {
				cause = context.Canceled
			}
			rep.Errs[i] = &CellError{Index: i, ID: cells[i].ID, Err: errorsJoin(ErrSkipped, cause)}
			counters.skipped.Add(1)
			emit(i, sim.Result{}, rep.Errs[i], SourceSkipped, 0, 0, 0)
		}
	}

	rep.Metrics.Computed = int(counters.computed.Load())
	rep.Metrics.FromShared = int(counters.fromShared.Load())
	rep.Metrics.Failed = int(counters.failed.Load())
	rep.Metrics.OptionalFailed = int(counters.optFailed.Load())
	rep.Metrics.Skipped = int(counters.skipped.Load())
	rep.Metrics.Retries = int(counters.retries.Load())
	rep.Metrics.Panics = int(counters.panics.Load())
	rep.Metrics.Deduped = int(counters.deduped.Load())

	if err := rep.FirstErr(); err != nil {
		return rep, err
	}
	if journErr != nil {
		return rep, journErr
	}
	return rep, nil
}

// runCell executes one cell with panic isolation, the per-cell
// deadline budget, and capped exponential backoff on transient errors.
// attempts reports how many times the cell's Run actually executed.
func runCell(ctx context.Context, cfg Config, c Cell, retries, panics *atomic.Int64) (_ sim.Result, attempts int, _ error) {
	cctx := ctx
	if cfg.CellBudget > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, cfg.CellBudget)
		defer cancel()
	}
	var last error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if err := cctx.Err(); err != nil {
			if last == nil {
				last = err
			}
			break
		}
		attempts++
		res, err := safeRun(cctx, c, panics)
		if err == nil {
			return res, attempts, nil
		}
		last = err
		if !cfg.Retryable(err) {
			break
		}
		if attempt+1 < cfg.MaxAttempts {
			retries.Add(1)
			if !sleepCtx(cctx, backoffFor(cfg.BackoffBase, cfg.BackoffMax, attempt)) {
				break
			}
		}
	}
	return sim.Result{}, attempts, last
}

// backoffFor returns the pause before the retry that follows the given
// zero-based attempt: BackoffBase doubling per attempt, capped at
// BackoffMax (overflow-safe, so a huge attempt count saturates at the
// cap instead of wrapping negative).
func backoffFor(base, cap time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	b := base
	for i := 0; i < attempt; i++ {
		b <<= 1
		if b >= cap || b <= 0 {
			return cap
		}
	}
	if b > cap {
		return cap
	}
	return b
}

// safeRun isolates a cell panic to a typed error instead of
// collapsing the sweep.
func safeRun(ctx context.Context, c Cell, panics *atomic.Int64) (res sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			panics.Add(1)
			res = sim.Result{}
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return c.Run(ctx)
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// errorsJoin wraps skip + cause so both match under errors.Is.
func errorsJoin(sentinel, cause error) error {
	if cause == nil {
		return sentinel
	}
	return errors.Join(sentinel, cause)
}
