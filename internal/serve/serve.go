// Package serve is the crash-tolerant HTTP sweep service: clients POST
// a sweep spec (designs × workloads × traces × parameter grid), cells
// are sharded across a bounded worker pool, and per-cell results
// stream back as NDJSON as they land.
//
// Robustness is the contract, not a feature flag. Every accepted sweep
// is backed by a wlrun/v1 journal keyed by the spec's content hash, so
// a SIGKILL'd server restarts and resumes every sweep — resubmitting
// an identical spec serves every journaled cell with zero
// recomputation. A shared content-addressed single-flight store dedupes
// overlapping sweeps from concurrent clients to near-zero work: a cell
// is computed once per server lifetime no matter how many sweeps
// request it. Overload and crash are first-class states: admission
// control sheds load with 429 + Retry-After when the queue is full,
// per-request and per-cell deadline budgets degrade to deterministic
// skips, transient cell errors retry with capped backoff, worker panics
// are isolated to their cell, and graceful shutdown drains or journals
// every in-flight cell within a configured deadline. /healthz and
// /readyz expose liveness and drain state; /metricz exposes the
// counters the chaos gate audits (zero recompute, exactly-once
// compute).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wlcache/internal/obs"
	"wlcache/internal/runner"
	"wlcache/internal/sim"
)

// Config tunes a Server. Zero values mean the documented defaults.
type Config struct {
	// DataDir holds the per-sweep wlrun/v1 journals; it is scanned at
	// startup to rebuild the shared result store. Required.
	DataDir string
	// Engine is the engine version mixed into every content address
	// (default sim.EngineVersion).
	Engine string
	// Workers bounds each sweep's worker pool (0 = NumCPU).
	Workers int
	// MaxConcurrent bounds sweeps running at once (0 = 2).
	MaxConcurrent int
	// MaxQueue bounds sweeps waiting for a run slot; a submission
	// beyond it is shed with 429 + Retry-After (0 = 8).
	MaxQueue int
	// MaxCells bounds a single spec's cell count (0 = 10000).
	MaxCells int
	// RetryAfter is the hint returned with shed load (0 = 5s).
	RetryAfter time.Duration
	// RequestBudget bounds one sweep's wall time; cells not started
	// when it expires become deterministic skips (0 = none).
	RequestBudget time.Duration
	// CellBudget is the per-cell deadline, and the cap on a spec's
	// cell_budget_ms (0 = none).
	CellBudget time.Duration
	// MaxAttempts bounds tries per cell for transient failures
	// (0 = runner default).
	MaxAttempts int
	// AfterJournal, when set, runs after the n-th journal append
	// server-wide becomes durable, under that journal's append lock —
	// the chaos harness SIGKILLs the process here.
	AfterJournal func(total int)
	// Log receives operational messages (nil = discard).
	Log *log.Logger
	// Logger receives structured request/sweep/cell logs keyed by
	// request ID (nil = discard). Sweep lifecycle logs at Info,
	// per-cell and probe traffic at Debug.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints are opt-in, never ambient.
	EnablePprof bool
}

func (c Config) normalize() Config {
	if c.Engine == "" {
		c.Engine = sim.EngineVersion
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 8
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 10000
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 5 * time.Second
	}
	if c.Log == nil {
		c.Log = log.New(io.Discard, "", 0)
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// counters are the server-wide atomics surfaced by /metricz.
type counters struct {
	sweepsAccepted    atomic.Int64
	sweepsRejected    atomic.Int64
	sweepsUnavailable atomic.Int64
	sweepsCompleted   atomic.Int64
	cellsComputed     atomic.Int64
	cellsFromJournal  atomic.Int64
	cellsFromShared   atomic.Int64
	cellsDeduped      atomic.Int64
	cellsFailed       atomic.Int64
	cellsSkipped      atomic.Int64
	cellsRetried      atomic.Int64
	cellsPanicked     atomic.Int64
	journalAppends    atomic.Int64
	journalDropped    atomic.Int64
	journalTornBytes  atomic.Int64
	quarantined       atomic.Int64
}

// MetricsSnapshot is the /metricz document. The chaos gate's equations
// read it: StoreLoaded must equal the journal population at the crash,
// and CellsComputed must cover exactly the cells no journal held —
// with overlapping concurrent sweeps computing every duplicate exactly
// once (visible as CellsFromShared).
type MetricsSnapshot struct {
	SweepsAccepted    int64 `json:"sweeps_accepted"`
	SweepsRejected    int64 `json:"sweeps_rejected"`
	SweepsUnavailable int64 `json:"sweeps_unavailable"`
	SweepsCompleted   int64 `json:"sweeps_completed"`
	SweepsActive      int64 `json:"sweeps_active"`
	SweepsQueued      int64 `json:"sweeps_queued"`

	CellsComputed    int64 `json:"cells_computed"`
	CellsFromJournal int64 `json:"cells_from_journal"`
	CellsFromShared  int64 `json:"cells_from_shared"`
	CellsDeduped     int64 `json:"cells_deduped"`
	CellsFailed      int64 `json:"cells_failed"`
	CellsSkipped     int64 `json:"cells_skipped"`
	CellsRetried     int64 `json:"cells_retried"`
	CellsPanicked    int64 `json:"cells_panicked"`

	StoreLoaded         int64 `json:"store_loaded"`
	StoreSize           int64 `json:"store_size"`
	JournalAppends      int64 `json:"journal_appends"`
	JournalDropped      int64 `json:"journal_dropped_records"`
	JournalTornBytes    int64 `json:"journal_torn_tail_bytes"`
	JournalsQuarantined int64 `json:"journals_quarantined"`
	Draining            bool  `json:"draining"`
}

// Server is the sweep service.
type Server struct {
	cfg   Config
	store *runner.Flight
	mux   *http.ServeMux
	h     http.Handler // mux wrapped with request instrumentation
	hs    *http.Server
	slog  *slog.Logger

	// reg accumulates the latency histograms /metrics renders
	// alongside the /metricz counter snapshot.
	reg *obs.SyncRegistry

	// progMu guards the per-sweep progress records behind
	// GET /v1/sweeps/{id} and its /trace export.
	progMu   sync.Mutex
	prog     map[string]*progress
	progDone []*progress // completed, oldest first, for eviction

	sem     chan struct{} // run slots
	drainCh chan struct{}
	mu      sync.Mutex // guards waiting, draining
	waiting int
	drained bool
	active  sync.WaitGroup

	// hardCtx cancels in-flight sweeps when the drain deadline passes.
	hardCtx    context.Context
	hardCancel context.CancelCauseFunc

	appends     atomic.Int64
	storeLoaded int64
	c           counters

	// beforeRun, when set, runs after a sweep wins admission and
	// before its cells execute. Tests use it to hold run slots at
	// deterministic points.
	beforeRun func(sweepID string)
}

// New builds a Server and rebuilds the shared result store from every
// journal in DataDir: after a crash, every durably journaled cell is
// servable again before the first request lands. A corrupt journal is
// quarantined (renamed aside) and logged, never fatal — the sweep that
// owns it recomputes.
func New(cfg Config) (*Server, error) {
	cfg = cfg.normalize()
	if cfg.DataDir == "" {
		return nil, errors.New("serve: Config.DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	hardCtx, hardCancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		store:      runner.NewFlight(),
		mux:        http.NewServeMux(),
		slog:       cfg.Logger,
		reg:        obs.NewSyncRegistry(),
		prog:       make(map[string]*progress),
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		drainCh:    make(chan struct{}),
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
	}
	if err := s.loadStore(); err != nil {
		return nil, err
	}
	s.mux.HandleFunc("/v1/sweeps", s.handleSweeps)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/trace", s.handleSweepTrace)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metricz", s.handleMetricz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", netpprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	}
	s.h = s.instrument(s.mux)
	return s, nil
}

// loadStore seeds the shared store from every journal in DataDir.
func (s *Server) loadStore() error {
	paths, err := filepath.Glob(filepath.Join(s.cfg.DataDir, "*.jsonl"))
	if err != nil {
		return err
	}
	for _, p := range paths {
		results, stats, err := runner.ReadJournal(p, s.cfg.Engine)
		if err != nil {
			// Interior corruption: quarantine so the owning sweep
			// restarts clean, and keep serving everything else.
			s.quarantine(p, err)
			continue
		}
		for addr, res := range results {
			s.store.Seed(addr, res)
		}
		s.noteLoadStats(stats)
	}
	s.storeLoaded = int64(s.store.Len())
	s.cfg.Log.Printf("serve: store loaded: %d results from %d journals", s.storeLoaded, len(paths))
	return nil
}

// quarantine renames a corrupt journal aside so its sweep restarts
// from scratch instead of failing forever.
func (s *Server) quarantine(path string, cause error) {
	s.c.quarantined.Add(1)
	dst := path + ".corrupt"
	if err := os.Rename(path, dst); err != nil {
		s.cfg.Log.Printf("serve: quarantine %s failed: %v (corruption: %v)", path, err, cause)
		return
	}
	s.cfg.Log.Printf("serve: quarantined corrupt journal %s -> %s: %v", path, dst, cause)
}

// noteLoadStats folds one journal reload's loss accounting into the
// server metrics, logging any non-zero loss (a torn tail is expected
// crash damage, but never silent).
func (s *Server) noteLoadStats(stats runner.LoadStats) {
	s.c.journalDropped.Add(int64(stats.Dropped))
	s.c.journalTornBytes.Add(int64(stats.TornTailBytes))
	if stats.Dropped > 0 || stats.TornTailBytes > 0 {
		s.cfg.Log.Printf("serve: journal reload: %d records served, %d dropped, %d torn-tail bytes",
			stats.Records, stats.Dropped, stats.TornTailBytes)
	}
}

// Handler returns the service's HTTP handler (httptest-friendly),
// request instrumentation included.
func (s *Server) Handler() http.Handler { return s.h }

// Serve accepts connections until Shutdown or a listener error.
func (s *Server) Serve(ln net.Listener) error {
	s.hs = &http.Server{Handler: s.h}
	err := s.hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains gracefully: new submissions are refused (503 /
// readyz), queued sweeps are released with 503, and running sweeps
// finish. If ctx expires first, in-flight sweep contexts are
// cancelled: the cells already running complete and journal (a
// simulation is not preemptible), every unstarted cell becomes a
// deterministic skip, and the streams still end with a well-formed
// done event. Returns ctx.Err() when the deadline forced the
// degradation, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.drained {
		s.drained = true
		close(s.drainCh)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.active.Wait()
		close(done)
	}()
	var forced error
	select {
	case <-done:
	case <-ctx.Done():
		forced = ctx.Err()
		s.hardCancel(fmt.Errorf("serve: shutdown drain deadline: %w", ctx.Err()))
		<-done
	}
	if s.hs != nil {
		// Handlers are done; this just closes the listener and idles.
		_ = s.hs.Shutdown(context.Background())
	}
	return forced
}

func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drained
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ready\n")
}

func (s *Server) handleMetricz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Metrics()); err != nil {
		// Headers are gone; all that's left is to not fail silently.
		s.cfg.Log.Printf("serve: /metricz response: %v", err)
	}
}

// Metrics snapshots the server-wide counters.
func (s *Server) Metrics() MetricsSnapshot {
	s.mu.Lock()
	queued := int64(s.waiting)
	s.mu.Unlock()
	return MetricsSnapshot{
		SweepsAccepted:      s.c.sweepsAccepted.Load(),
		SweepsRejected:      s.c.sweepsRejected.Load(),
		SweepsUnavailable:   s.c.sweepsUnavailable.Load(),
		SweepsCompleted:     s.c.sweepsCompleted.Load(),
		SweepsActive:        int64(len(s.sem)),
		SweepsQueued:        queued,
		CellsComputed:       s.c.cellsComputed.Load(),
		CellsFromJournal:    s.c.cellsFromJournal.Load(),
		CellsFromShared:     s.c.cellsFromShared.Load(),
		CellsDeduped:        s.c.cellsDeduped.Load(),
		CellsFailed:         s.c.cellsFailed.Load(),
		CellsSkipped:        s.c.cellsSkipped.Load(),
		CellsRetried:        s.c.cellsRetried.Load(),
		CellsPanicked:       s.c.cellsPanicked.Load(),
		StoreLoaded:         s.storeLoaded,
		StoreSize:           int64(s.store.Len()),
		JournalAppends:      s.appends.Load(),
		JournalDropped:      s.c.journalDropped.Load(),
		JournalTornBytes:    s.c.journalTornBytes.Load(),
		JournalsQuarantined: s.c.quarantined.Load(),
		Draining:            s.draining(),
	}
}

// admitStatus is the admission verdict for one submission.
type admitStatus int

const (
	admitted         admitStatus = iota
	admitShed                    // queue full: 429 + Retry-After
	admitUnavailable             // draining: 503
	admitGone                    // client went away while queued
)

// admit implements admission control: a free run slot admits
// immediately; otherwise the submission queues (bounded by MaxQueue)
// until a slot frees, the client gives up, or the server drains. A
// full queue sheds deterministically with 429 + Retry-After.
func (s *Server) admit(ctx context.Context) (func(), admitStatus) {
	s.mu.Lock()
	if s.drained {
		s.mu.Unlock()
		return nil, admitUnavailable
	}
	select {
	case s.sem <- struct{}{}:
		s.active.Add(1)
		s.mu.Unlock()
		return s.releaseSlot, admitted
	default:
	}
	if s.waiting >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, admitShed
	}
	s.waiting++
	s.reg.Set(mQueueDepth, obs.DirLower, float64(s.waiting))
	s.mu.Unlock()
	queued := time.Now()
	defer func() {
		s.mu.Lock()
		s.waiting--
		s.reg.Set(mQueueDepth, obs.DirLower, float64(s.waiting))
		s.mu.Unlock()
		s.reg.Observe(mQueueWait, obs.DirLower, float64(time.Since(queued).Microseconds()))
	}()
	select {
	case s.sem <- struct{}{}:
		if !s.tryActivate() {
			s.releaseSlot()
			return nil, admitUnavailable
		}
		return s.releaseSlot, admitted
	case <-ctx.Done():
		return nil, admitGone
	case <-s.drainCh:
		return nil, admitUnavailable
	}
}

// tryActivate registers one admitted sweep on the drain WaitGroup.
// The Add must happen under the same lock that checks drained: a bare
// Add in the handler could race Shutdown's Wait at counter zero, and
// Shutdown could return while the sweep was still starting.
func (s *Server) tryActivate() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drained {
		return false
	}
	s.active.Add(1)
	return true
}

func (s *Server) releaseSlot() { <-s.sem }

// httpError writes a small JSON error document.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSweeps is POST /v1/sweeps: validate, admit, then execute the
// sweep through the crash-resumable runner, streaming NDJSON events.
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a sweep spec")
		return
	}
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	spec = spec.normalize()
	if err := spec.validate(); err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	if n := spec.NumCells(); n > s.cfg.MaxCells {
		httpError(w, http.StatusBadRequest, "sweep has %d cells, limit %d", n, s.cfg.MaxCells)
		return
	}
	sweepID := spec.ID(s.cfg.Engine)
	rid := RequestIDFrom(r.Context())

	release, verdict := s.admit(r.Context())
	switch verdict {
	case admitShed:
		s.c.sweepsRejected.Add(1)
		s.slog.Warn("sweep shed", "request", rid, "sweep", sweepID)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		httpError(w, http.StatusTooManyRequests, "sweep queue full, retry after %s", s.cfg.RetryAfter)
		return
	case admitUnavailable:
		s.c.sweepsUnavailable.Add(1)
		s.slog.Warn("sweep refused, draining", "request", rid, "sweep", sweepID)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	case admitGone:
		return
	}
	// admit already counted this sweep on the drain WaitGroup.
	defer s.active.Done()
	defer release()
	if s.beforeRun != nil {
		s.beforeRun(sweepID)
	}
	s.c.sweepsAccepted.Add(1)
	s.slog.Info("sweep accepted", "request", rid, "sweep", sweepID, "cells", spec.NumCells())
	s.runSweep(w, r, spec, sweepID)
	s.c.sweepsCompleted.Add(1)
}

// runSweep executes one admitted sweep and streams its events.
func (s *Server) runSweep(w http.ResponseWriter, r *http.Request, spec Spec, sweepID string) {
	planned := spec.cells()
	cells := make([]runner.Cell, len(planned))
	for i, p := range planned {
		cells[i] = p.cell
	}
	rid := RequestIDFrom(r.Context())
	start := time.Now()
	prog := s.progressStart(sweepID, rid, len(cells), s.cfg.Workers)

	// The sweep context: client disconnect, the per-request budget, and
	// the shutdown drain deadline all cancel it; the runner degrades
	// every unstarted cell to a deterministic skip.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopWatch := context.AfterFunc(s.hardCtx, cancel)
	defer stopWatch()
	if s.hardCtx.Err() != nil {
		// AfterFunc fires asynchronously; a sweep starting after the
		// drain deadline must skip its cells deterministically, not race
		// the cancellation for its first few.
		cancel()
	}
	if s.cfg.RequestBudget > 0 {
		var cancelBudget context.CancelFunc
		ctx, cancelBudget = context.WithTimeout(ctx, s.cfg.RequestBudget)
		defer cancelBudget()
	}

	cellBudget := s.cfg.CellBudget
	if spec.CellBudgetMS > 0 {
		b := time.Duration(spec.CellBudgetMS) * time.Millisecond
		if cellBudget == 0 || b < cellBudget {
			cellBudget = b
		}
	}

	journalPath := filepath.Join(s.cfg.DataDir, sweepID+".jsonl")
	if _, _, err := runner.ReadJournal(journalPath, s.cfg.Engine); err != nil {
		// Pre-flight: a corrupt journal would fail the sweep at open;
		// quarantine it and start clean instead.
		s.quarantine(journalPath, err)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Sweep-Id", sweepID)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeEvent := func(ev Event) {
		// A client that vanished mid-stream surfaces as write errors;
		// the sweep still runs to completion and journals (the next
		// resubmission is then free).
		_ = enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeEvent(Event{Type: EventAccepted, Sweep: sweepID, Request: rid, Cells: len(cells)})

	events := make(chan runner.CellDone, 256)
	var rep runner.Report
	var runErr error
	go func() {
		defer close(events)
		rep, runErr = runner.RunCells(ctx, runner.Config{
			Workers:     s.cfg.Workers,
			Engine:      s.cfg.Engine,
			JournalPath: journalPath,
			MaxAttempts: s.cfg.MaxAttempts,
			CellBudget:  cellBudget,
			Shared:      s.store,
			AfterJournal: func(int) {
				n := s.appends.Add(1)
				if s.cfg.AfterJournal != nil {
					s.cfg.AfterJournal(int(n))
				}
			},
			ObserveFsync: func(d time.Duration) {
				s.reg.Observe(mJournalFsync, obs.DirLower, float64(d.Microseconds()))
			},
			OnCell: func(d runner.CellDone) { events <- d },
		}, cells)
	}()

	for d := range events {
		s.noteCell(d)
		s.progressCell(prog, d, time.Since(start))
		s.slog.Debug("cell done",
			"request", rid, "sweep", sweepID, "cell", d.ID,
			"source", string(d.Source), "dur_us", d.Dur.Microseconds(),
			"wait_us", d.Wait.Microseconds(), "attempts", d.Attempts)
		ev := Event{
			Type:     EventCell,
			Request:  rid,
			Index:    d.Index,
			ID:       d.ID,
			Kind:     planned[d.Index].meta.Kind,
			Workload: planned[d.Index].meta.Workload,
			Trace:    planned[d.Index].meta.Trace,
			Source:   string(d.Source),
		}
		if d.Err != nil {
			// Surface the underlying simulator error exactly as the
			// golden pins it, not the runner's cell-attributed wrapper.
			var ce *runner.CellError
			if errors.As(d.Err, &ce) {
				ev.Error = ce.Err.Error()
			} else {
				ev.Error = d.Err.Error()
			}
		} else {
			res := d.Result
			ev.Result = &res
		}
		writeEvent(ev)
	}

	s.c.cellsComputed.Add(int64(rep.Metrics.Computed))
	s.c.cellsFromJournal.Add(int64(rep.Metrics.FromJournal))
	s.c.cellsFromShared.Add(int64(rep.Metrics.FromShared))
	s.c.cellsDeduped.Add(int64(rep.Metrics.Deduped))
	s.c.cellsFailed.Add(int64(rep.Metrics.Failed + rep.Metrics.OptionalFailed))
	s.c.cellsSkipped.Add(int64(rep.Metrics.Skipped))
	s.c.cellsRetried.Add(int64(rep.Metrics.Retries))
	s.c.cellsPanicked.Add(int64(rep.Metrics.Panics))
	s.noteLoadStats(rep.Metrics.Journal)

	s.progressEnd(prog, runErr)
	s.slog.Info("sweep done",
		"request", rid, "sweep", sweepID, "cells", len(cells),
		"computed", rep.Metrics.Computed, "from_journal", rep.Metrics.FromJournal,
		"from_shared", rep.Metrics.FromShared, "deduped", rep.Metrics.Deduped,
		"failed", rep.Metrics.Failed+rep.Metrics.OptionalFailed,
		"skipped", rep.Metrics.Skipped, "dur_ms", time.Since(start).Milliseconds())

	doneEv := Event{Type: EventDone, Sweep: sweepID, Request: rid, Metrics: sweepMetricsFrom(rep.Metrics)}
	if runErr != nil {
		// Cells are all tolerated, so this is journal/infrastructure
		// damage; the stream still ends well-formed.
		doneEv.Error = runErr.Error()
		s.cfg.Log.Printf("serve: sweep %s: %v", sweepID, runErr)
	}
	writeEvent(doneEv)
}
