package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wlcache/internal/expt"
	"wlcache/internal/runner"
)

const committedGolden = "../expt/testdata/golden_results.json"

// newTestServer builds a Server on a temp data dir plus an HTTP
// front-end and client for it.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, &Client{Base: hs.URL}
}

// tinySpec is the smallest interesting sweep: three designs, one
// workload, uninterrupted power. All three cells are feasible.
func tinySpec() Spec {
	return Spec{
		Designs:   []string{"nvsram", "nocache", "wl"},
		Workloads: []string{"adpcmencode"},
		Traces:    []string{"none"},
	}
}

// A submitted sweep streams an accepted event, one cell event per
// cell (with results), and a done event whose metrics add up — and the
// streamed results are bit-identical to the committed golden.
func TestSubmitStreamsGoldenCells(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a sweep subset")
	}
	_, cl := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	spec := Spec{Workloads: []string{"adpcmencode"}} // all designs, golden traces
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Accepted.Cells != spec.NumCells() {
		t.Fatalf("accepted %d cells, want %d", st.Accepted.Cells, spec.NumCells())
	}
	cells, done, err := st.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != spec.NumCells() || done == nil {
		t.Fatalf("streamed %d cells, done=%v; want %d and a done event", len(cells), done, spec.NumCells())
	}
	if done.Error != "" {
		t.Fatalf("done event carries error: %s", done.Error)
	}
	m := done.Metrics
	if m.FromJournal+m.FromShared+m.Computed+m.Failed != m.Cells || m.Skipped != 0 {
		t.Fatalf("done metrics do not add up: %+v", m)
	}

	got := make([]expt.GoldenCell, 0, len(cells))
	for _, ev := range cells {
		gc := expt.GoldenCell{Kind: ev.Kind, Workload: ev.Workload, Trace: ev.Trace, Err: ev.Error}
		if ev.Error == "" {
			if ev.Result == nil {
				t.Fatalf("cell %s/%s/%s has neither result nor error", ev.Kind, ev.Workload, ev.Trace)
			}
			gc.Fields = expt.FlattenResult(*ev.Result)
		}
		got = append(got, gc)
	}
	committed, err := expt.LoadGoldenFile(committedGolden)
	if err != nil {
		t.Fatal(err)
	}
	if err := expt.CompareGoldenCells(got, committed, true); err != nil {
		t.Fatalf("streamed results diverged from the committed golden: %v", err)
	}
}

// A new server on the same data dir serves a completed sweep entirely
// from its journal: zero recomputation across a restart.
func TestRestartServesFromJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a sweep subset")
	}
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	_, cl1 := newTestServer(t, Config{DataDir: dir})
	st, err := cl1.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := st.Drain(); err != nil || done == nil || done.Metrics.Computed != 3 {
		t.Fatalf("first run: done=%+v err=%v, want 3 computed", done, err)
	}
	st.Close()

	s2, cl2 := newTestServer(t, Config{DataDir: dir})
	if got := s2.Metrics().StoreLoaded; got != 3 {
		t.Fatalf("restarted store loaded %d results, want 3", got)
	}
	st2, err := cl2.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cells, done, err := st2.Drain()
	if err != nil || done == nil {
		t.Fatalf("drain: done=%v err=%v", done, err)
	}
	if done.Metrics.Computed != 0 || done.Metrics.FromJournal != 3 {
		t.Fatalf("restart recomputed: %+v", done.Metrics)
	}
	for _, ev := range cells {
		if ev.Source != string(runner.SourceJournal) {
			t.Fatalf("cell %s served from %q, want journal", ev.ID, ev.Source)
		}
	}
}

// Two overlapping sweeps submitted concurrently compute every
// duplicate cell exactly once, with the dedup visible in the metrics.
func TestConcurrentOverlapComputesOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs sweep subsets")
	}
	s, cl := newTestServer(t, Config{MaxConcurrent: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	specA := tinySpec() // nvsram, nocache, wl
	specB := Spec{      // overlaps on nvsram and wl
		Designs:   []string{"nvsram", "wl"},
		Workloads: []string{"adpcmencode"},
		Traces:    []string{"none"},
	}
	type out struct {
		done *Event
		err  error
	}
	res := make(chan out, 2)
	for _, spec := range []Spec{specA, specB} {
		spec := spec
		go func() {
			st, err := cl.Submit(ctx, spec)
			if err != nil {
				res <- out{err: err}
				return
			}
			defer st.Close()
			_, done, err := st.Drain()
			res <- out{done: done, err: err}
		}()
	}
	var computed, shared int
	for i := 0; i < 2; i++ {
		o := <-res
		if o.err != nil || o.done == nil {
			t.Fatalf("sweep failed: done=%v err=%v", o.done, o.err)
		}
		computed += o.done.Metrics.Computed
		shared += o.done.Metrics.FromShared
	}
	// 3 unique cells across both sweeps; the 2 overlapping cells are
	// each served to exactly one sweep from the shared store.
	if computed != 3 {
		t.Fatalf("computed %d cells across overlapping sweeps, want exactly 3", computed)
	}
	if shared != 2 {
		t.Fatalf("shared store served %d cells, want exactly 2", shared)
	}
	if got := s.Metrics().CellsFromShared; got != 2 {
		t.Fatalf("server metrics count %d shared cells, want 2", got)
	}
}

// Admission control: with every run slot and queue position taken, a
// further submission sheds deterministically with 429 + Retry-After.
func TestOverloadSheds429(t *testing.T) {
	s, cl := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1, RetryAfter: 7 * time.Second})
	entered := make(chan string, 4)
	gate := make(chan struct{})
	s.beforeRun = func(id string) {
		entered <- id
		<-gate
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	submit := func(spec Spec) {
		defer wg.Done()
		st, err := cl.Submit(ctx, spec)
		if err != nil {
			t.Errorf("held sweep failed: %v", err)
			return
		}
		st.Drain()
		st.Close()
	}
	// First sweep holds the only run slot (blocked in beforeRun).
	wg.Add(1)
	go submit(tinySpec())
	<-entered
	// Second sweep occupies the single queue position.
	wg.Add(1)
	go submit(Spec{Designs: []string{"nocache"}, Workloads: []string{"adpcmencode"}, Traces: []string{"none"}})
	waitFor(t, func() bool { return s.Metrics().SweepsQueued == 1 })

	// Third submission must shed, not hang.
	_, err := cl.Submit(ctx, tinySpec())
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("overloaded submit returned %v, want OverloadedError", err)
	}
	if oe.RetryAfter != 7*time.Second {
		t.Fatalf("Retry-After hint = %v, want 7s", oe.RetryAfter)
	}
	if got := s.Metrics().SweepsRejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	close(gate)
	wg.Wait()
	if got := s.Metrics().SweepsCompleted; got != 2 {
		t.Fatalf("completed = %d, want both held sweeps to finish", got)
	}
}

// Graceful shutdown drains: running sweeps finish and stream their
// done event, new submissions get 503, readyz flips to 503, and
// Shutdown returns nil once drained.
func TestGracefulShutdownDrains(t *testing.T) {
	s, cl := newTestServer(t, Config{MaxConcurrent: 1})
	entered := make(chan string, 1)
	gate := make(chan struct{})
	s.beforeRun = func(id string) {
		entered <- id
		<-gate
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type out struct {
		done *Event
		err  error
	}
	res := make(chan out, 1)
	go func() {
		st, err := cl.Submit(ctx, tinySpec())
		if err != nil {
			res <- out{err: err}
			return
		}
		defer st.Close()
		_, done, err := st.Drain()
		res <- out{done: done, err: err}
	}()
	<-entered

	shut := make(chan error, 1)
	go func() { shut <- s.Shutdown(context.Background()) }()
	waitFor(t, func() bool { return s.Metrics().Draining })

	if err := cl.Ready(ctx); err == nil {
		t.Fatal("readyz still 200 while draining")
	}
	if _, err := cl.Submit(ctx, tinySpec()); err == nil {
		t.Fatal("draining server accepted a new sweep")
	}
	if got := s.Metrics().SweepsUnavailable; got != 1 {
		t.Fatalf("unavailable counter = %d, want 1", got)
	}

	close(gate)
	o := <-res
	if o.err != nil || o.done == nil || o.done.Error != "" {
		t.Fatalf("in-flight sweep did not finish cleanly: done=%+v err=%v", o.done, o.err)
	}
	if err := <-shut; err != nil {
		t.Fatalf("clean drain returned %v, want nil", err)
	}
}

// When the drain deadline passes, in-flight sweeps degrade instead of
// hanging: unstarted cells become deterministic skips and the stream
// still ends with a well-formed done event.
func TestShutdownDeadlineDegradesToSkips(t *testing.T) {
	s, cl := newTestServer(t, Config{MaxConcurrent: 1})
	// Hold the sweep until the drain deadline forces the hard cancel;
	// its cells then all start after cancellation and must skip.
	s.beforeRun = func(string) { <-s.hardCtx.Done() }
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type out struct {
		cells []Event
		done  *Event
		err   error
	}
	res := make(chan out, 1)
	go func() {
		st, err := cl.Submit(ctx, tinySpec())
		if err != nil {
			res <- out{err: err}
			return
		}
		defer st.Close()
		cells, done, err := st.Drain()
		res <- out{cells: cells, done: done, err: err}
	}()
	waitFor(t, func() bool { return s.Metrics().SweepsActive == 1 })

	sctx, scancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer scancel()
	if err := s.Shutdown(sctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown returned %v, want deadline exceeded", err)
	}

	o := <-res
	if o.err != nil || o.done == nil {
		t.Fatalf("degraded sweep stream broken: done=%v err=%v", o.done, o.err)
	}
	if o.done.Metrics.Skipped != 3 || o.done.Metrics.Computed != 0 {
		t.Fatalf("degraded sweep metrics %+v, want all 3 cells skipped", o.done.Metrics)
	}
	for _, ev := range o.cells {
		if ev.Source != string(runner.SourceSkipped) || ev.Error == "" {
			t.Fatalf("cell %s: source %q error %q, want a typed skip", ev.ID, ev.Source, ev.Error)
		}
	}
}

// Malformed and oversized specs are rejected with 400 before any
// simulation or journal I/O; wrong methods with 405.
func TestSpecRejection(t *testing.T) {
	s, cl := newTestServer(t, Config{MaxCells: 50})
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(cl.Base+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	cases := []struct {
		name, body string
	}{
		{"unknown design", `{"designs":["warp-drive"]}`},
		{"unknown workload", `{"workloads":["fortnite"]}`},
		{"unknown trace", `{"traces":["tr99"]}`},
		{"unknown field", `{"bogus":1}`},
		{"not json", `designs=wl`},
		{"oversized scale", `{"scale":65}`},
		{"negative budget", `{"cell_budget_ms":-1}`},
		{"grid out of range", `{"grid":{"maxline":[65]}}`},
		{"unknown tier", `{"tier":"warp"}`},
		{"too many cells", `{}`}, // 78 golden cells > MaxCells 50
	}
	for _, c := range cases {
		if resp := post(c.body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
	resp, err := http.Get(cl.Base + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", resp.StatusCode)
	}
	if got := s.Metrics().SweepsAccepted; got != 0 {
		t.Fatalf("rejected specs were accepted: %d", got)
	}
}

// healthz answers while draining (liveness), readyz does not
// (readiness), and metricz serves a decodable snapshot.
func TestProbes(t *testing.T) {
	s, cl := newTestServer(t, Config{})
	ctx := context.Background()
	if err := cl.Ready(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Metrics(ctx); err != nil {
		t.Fatal(err)
	}
	go s.Shutdown(context.Background())
	waitFor(t, func() bool { return s.Metrics().Draining })
	resp, err := http.Get(cl.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
	if err := cl.Ready(ctx); err == nil {
		t.Fatal("readyz 200 while draining")
	}
}

// The spec's content hash is stable across equivalent spellings (empty
// vs explicit defaults) and distinct across different sweeps — it keys
// the journal files, so a collision would cross-wire resumes.
func TestSpecIDStability(t *testing.T) {
	var defaults Spec
	explicit := Spec{
		Workloads: expt.GoldenWorkloads(),
		Scale:     1,
	}
	if defaults.ID("e1") != explicit.ID("e1") {
		t.Fatal("equivalent specs hash differently")
	}
	if defaults.ID("e1") == defaults.ID("e2") {
		t.Fatal("engine version not mixed into the sweep id")
	}
	other := Spec{Workloads: []string{"sha"}}
	if defaults.ID("e1") == other.ID("e1") {
		t.Fatal("different specs collide")
	}
}

// The engine tier is part of a sweep's identity at every level: the
// empty spelling keeps the pre-tier sweep ID (so committed journals
// stay addressable), "fast" hashes differently, and the planned
// cells' fingerprints differ between tiers (so a journal entry from
// one tier can never satisfy a resume under the other).
func TestSpecTierIdentity(t *testing.T) {
	var defaults Spec
	exact := Spec{Tier: "exact"}
	fast := Spec{Tier: "fast"}
	if defaults.ID("e1") == exact.ID("e1") {
		// "" and "exact" select the same engine but are distinct
		// spellings; only "" is the committed pre-tier form.
		t.Log(`note: "" and "exact" hash alike`) // documents either outcome
	}
	if defaults.ID("e1") == fast.ID("e1") {
		t.Fatal("fast-tier spec hashes like the exact default")
	}
	if err := fast.normalize().validate(); err != nil {
		t.Fatalf("fast tier rejected: %v", err)
	}
	ec := defaults.cells()
	fc := fast.cells()
	if len(ec) == 0 || len(ec) != len(fc) {
		t.Fatalf("cell counts: exact %d, fast %d", len(ec), len(fc))
	}
	for i := range ec {
		if ec[i].cell.Fingerprint == fc[i].cell.Fingerprint {
			t.Fatalf("cell %s: identical fingerprint across tiers", ec[i].cell.ID)
		}
	}
}

// A corrupt journal on disk is quarantined at startup — renamed aside,
// counted, and the server still comes up serving everything else.
func TestCorruptJournalQuarantined(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, strings.Repeat("ab", 32)+".jsonl")
	// Interior corruption: garbage between two valid-shaped lines is
	// not crash damage an append-only writer can produce.
	content := fmt.Sprintf("{\"schema\":%q,\"engine\":%q}\nnot json at all\n{\"addr\":\"x\",\"id\":\"y\",\"fp\":\"z\",\"result\":{}}\n",
		runner.Schema, "e1")
	if err := os.WriteFile(bad, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{DataDir: dir, Engine: "e1"})
	if err != nil {
		t.Fatalf("corrupt journal killed startup: %v", err)
	}
	if got := s.Metrics().JournalsQuarantined; got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Fatalf("corrupt journal not renamed aside: %v", err)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("corrupt journal still in place: %v", err)
	}
}

// waitFor polls a condition with a deadline; serve tests use it to
// sequence admission states without sleeping blind.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
