package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"wlcache/internal/runner"
	"wlcache/internal/sim"
)

// The NDJSON stream event types.
const (
	EventAccepted = "accepted" // first line: sweep id + cell count
	EventCell     = "cell"     // one per cell, as its outcome lands
	EventDone     = "done"     // last line: sweep metrics
)

// Event is one NDJSON line of a sweep stream. Type selects which
// fields are meaningful.
type Event struct {
	Type  string `json:"type"`
	Sweep string `json:"sweep,omitempty"`
	// Request is the request ID of the submission that produced this
	// stream (an inbound X-Request-Id, or server-assigned), so events
	// correlate with the server's logs and the sweep's trace export.
	Request string `json:"request,omitempty"`
	Cells   int    `json:"cells,omitempty"`

	Index    int         `json:"index,omitempty"`
	ID       string      `json:"id,omitempty"`
	Kind     string      `json:"kind,omitempty"`
	Workload string      `json:"workload,omitempty"`
	Trace    string      `json:"trace,omitempty"`
	Source   string      `json:"source,omitempty"`
	Error    string      `json:"error,omitempty"`
	Result   *sim.Result `json:"result,omitempty"`

	Metrics *SweepMetrics `json:"metrics,omitempty"`
}

// SweepMetrics is the done event's accounting; the resume proof reads
// it (FromJournal + FromShared must cover every previously durable
// cell, Computed exactly the rest).
type SweepMetrics struct {
	Cells       int `json:"cells"`
	FromJournal int `json:"from_journal"`
	FromShared  int `json:"from_shared"`
	Deduped     int `json:"deduped"`
	Computed    int `json:"computed"`
	Failed      int `json:"failed"`
	Skipped     int `json:"skipped"`
	Retries     int `json:"retries"`
	Panics      int `json:"panics"`

	JournalRecords   int `json:"journal_records"`
	JournalDropped   int `json:"journal_dropped_records"`
	JournalTornBytes int `json:"journal_torn_tail_bytes"`
}

func sweepMetricsFrom(m runner.Metrics) *SweepMetrics {
	return &SweepMetrics{
		Cells:            m.Cells,
		FromJournal:      m.FromJournal,
		FromShared:       m.FromShared,
		Deduped:          m.Deduped,
		Computed:         m.Computed,
		Failed:           m.Failed + m.OptionalFailed,
		Skipped:          m.Skipped,
		Retries:          m.Retries,
		Panics:           m.Panics,
		JournalRecords:   m.Journal.Records,
		JournalDropped:   m.Journal.Dropped,
		JournalTornBytes: m.Journal.TornTailBytes,
	}
}

// Client is a minimal wlserve API client; the chaos harness and tests
// drive the service through it.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// OverloadedError is a 429 shed: retry after the hinted delay.
type OverloadedError struct {
	RetryAfter time.Duration
	Body       string
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("server overloaded, retry after %s: %s", e.RetryAfter, e.Body)
}

// StatusError is any other non-200 submission response, with the
// status code preserved — the load harness keys its 5xx gate on it.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("submit: %d %s: %s", e.Code, http.StatusText(e.Code), e.Body)
}

// Submit POSTs a sweep spec and returns the live event stream, having
// already consumed the accepted event (available as Stream.Accepted).
func (c *Client) Submit(ctx context.Context, spec Spec) (*Stream, error) {
	return c.SubmitRequest(ctx, spec, "")
}

// SubmitRequest is Submit with a caller-chosen request ID sent as
// X-Request-Id; the server echoes it on the response header and every
// stream event ("" lets the server assign one).
func (c *Client) SubmitRequest(ctx context.Context, spec Spec, requestID string) (*Stream, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			return nil, &OverloadedError{RetryAfter: time.Duration(secs) * time.Second, Body: string(bytes.TrimSpace(msg))}
		}
		return nil, &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(msg))}
	}
	st := &Stream{resp: resp, dec: json.NewDecoder(bufio.NewReader(resp.Body))}
	ev, err := st.Next()
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("submit: reading accepted event: %w", err)
	}
	if ev.Type != EventAccepted {
		st.Close()
		return nil, fmt.Errorf("submit: first event is %q, want %q", ev.Type, EventAccepted)
	}
	st.Accepted = ev
	return st, nil
}

// Stream is a live sweep's NDJSON event sequence.
type Stream struct {
	// Accepted is the already-consumed first event.
	Accepted Event
	resp     *http.Response
	dec      *json.Decoder
}

// Next returns the next event; io.EOF after the done event (or an
// unexpected transport error if the server died mid-stream — the crash
// the journal exists for).
func (st *Stream) Next() (Event, error) {
	var ev Event
	if err := st.dec.Decode(&ev); err != nil {
		return Event{}, err
	}
	return ev, nil
}

// Drain consumes the rest of the stream, returning every cell event
// plus the done event (nil if the stream died before it).
func (st *Stream) Drain() (cells []Event, done *Event, err error) {
	for {
		ev, nerr := st.Next()
		if nerr != nil {
			if nerr == io.EOF {
				nerr = nil
			}
			return cells, done, nerr
		}
		switch ev.Type {
		case EventCell:
			cells = append(cells, ev)
		case EventDone:
			d := ev
			done = &d
		}
	}
}

// Close releases the stream's connection.
func (st *Stream) Close() error {
	return st.resp.Body.Close()
}

// Ready probes /readyz once.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: %s", resp.Status)
	}
	return nil
}

// WaitReady polls /readyz until it answers 200 or ctx expires.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		if err := c.Ready(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server never became ready: %w", context.Cause(ctx))
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Progress fetches GET /v1/sweeps/{id}.
func (c *Client) Progress(ctx context.Context, sweepID string) (ProgressSnapshot, error) {
	var snap ProgressSnapshot
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/sweeps/"+sweepID, nil)
	if err != nil {
		return snap, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("progress: %s", resp.Status)
	}
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

// Metrics fetches /metricz.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var snap MetricsSnapshot
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metricz", nil)
	if err != nil {
		return snap, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("metricz: %s", resp.Status)
	}
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}
