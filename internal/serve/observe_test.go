package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"wlcache/internal/obs"
	"wlcache/internal/runner"
)

// syncBuf is a goroutine-safe log sink for the structured logger.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// rawSubmit POSTs a sweep spec with an explicit X-Request-Id header
// and returns the raw response, so tests can inspect headers the
// Client abstracts away.
func rawSubmit(t *testing.T, base string, spec Spec, rid string) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if rid != "" {
		req.Header.Set("X-Request-Id", rid)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// An inbound X-Request-Id is echoed on the response header, carried on
// every NDJSON event of the stream, recorded in the structured logs,
// and attached to the sweep's progress record.
func TestRequestIDEndToEnd(t *testing.T) {
	const rid = "e2e-req.42:a"
	logs := &syncBuf{}
	cfg := Config{Logger: slog.New(slog.NewTextHandler(logs, &slog.HandlerOptions{Level: slog.LevelDebug}))}
	_, cl := newTestServer(t, cfg)

	resp := rawSubmit(t, cl.Base, tinySpec(), rid)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %s", resp.Status)
	}
	if got := resp.Header.Get("X-Request-Id"); got != rid {
		t.Fatalf("response X-Request-Id = %q, want %q", got, rid)
	}

	var sweep string
	dec := json.NewDecoder(bufio.NewReader(resp.Body))
	events := 0
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		events++
		if ev.Request != rid {
			t.Fatalf("%s event carries request %q, want %q", ev.Type, ev.Request, rid)
		}
		if ev.Type == EventAccepted {
			sweep = ev.Sweep
		}
	}
	if events < 5 { // accepted + 3 cells + done
		t.Fatalf("streamed %d events, want >= 5", events)
	}

	snap, err := cl.Progress(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Request != rid {
		t.Fatalf("progress request = %q, want %q", snap.Request, rid)
	}

	out := logs.String()
	for _, want := range []string{"sweep accepted", "sweep done", "cell done", "http request"} {
		if !strings.Contains(out, want) {
			t.Fatalf("logs lack %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "request="+rid) {
		t.Fatalf("logs never mention request=%s:\n%s", rid, out)
	}
}

// A malformed inbound X-Request-Id is replaced with a fresh
// server-assigned one instead of being echoed verbatim.
func TestRequestIDInvalidReplaced(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	resp := rawSubmit(t, cl.Base, tinySpec(), "bad id\twith junk!")
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	got := resp.Header.Get("X-Request-Id")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Fatalf("assigned request ID %q, want 16 hex chars", got)
	}
}

// promScrape fetches /metrics and validates it as Prometheus text.
func promScrape(t *testing.T, base string) []obs.PromSample {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	samples, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v", err)
	}
	return samples
}

// sampleValue sums the samples matching a base name and label subset.
func sampleValue(samples []obs.PromSample, name string, labels map[string]string) (float64, bool) {
	var sum float64
	found := false
next:
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		for k, v := range labels {
			if s.Labels[k] != v {
				continue next
			}
		}
		sum += s.Value
		found = true
	}
	return sum, found
}

// After a sweep, /metrics renders the service counters and latency
// histograms as well-formed Prometheus text, consistent with the
// /metricz JSON snapshot the chaos gate reads.
func TestMetricsPrometheusScrape(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	st, err := cl.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := st.Drain(); err != nil || done == nil {
		t.Fatalf("drain: done=%v err=%v", done, err)
	}
	st.Close()

	samples := promScrape(t, cl.Base)
	jsonSnap, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"wlserve_sweeps_total", map[string]string{"state": "accepted"}, float64(jsonSnap.SweepsAccepted)},
		{"wlserve_sweeps_total", map[string]string{"state": "completed"}, float64(jsonSnap.SweepsCompleted)},
		{"wlserve_cells_total", map[string]string{"outcome": "computed"}, float64(jsonSnap.CellsComputed)},
		{"wlserve_journal_appends_total", nil, float64(jsonSnap.JournalAppends)},
	}
	for _, c := range checks {
		got, ok := sampleValue(samples, c.name, c.labels)
		if !ok || got != c.want {
			t.Errorf("%s%v = %v (found=%v), want %v to match /metricz", c.name, c.labels, got, ok, c.want)
		}
	}
	if v, ok := sampleValue(samples, "wlserve_cell_us_count", map[string]string{"outcome": "computed"}); !ok || v < 3 {
		t.Errorf("wlserve_cell_us_count{outcome=computed} = %v (found=%v), want >= 3", v, ok)
	}
	if _, ok := sampleValue(samples, "wlserve_http_requests_total", map[string]string{"route": "/v1/sweeps"}); !ok {
		t.Error("no wlserve_http_requests_total series for /v1/sweeps")
	}
	if v, ok := sampleValue(samples, "wlserve_journal_fsync_us_count", nil); !ok || v < 3 {
		t.Errorf("wlserve_journal_fsync_us_count = %v (found=%v), want >= 3 (one fsync per computed cell)", v, ok)
	}
}

// Concurrent /metricz (JSON) and /metrics (Prometheus) scrapes while
// sweeps are actively running stay well-formed and race-clean.
func TestConcurrentScrapesDuringSweeps(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	sweeps := make(chan error, 1)
	go func() {
		// Three back-to-back submissions: the first computes, the rest
		// hit the journal/dedup paths — all of them write metrics and
		// progress records while the scrapers below read.
		for i := 0; i < 3; i++ {
			st, err := cl.Submit(ctx, tinySpec())
			if err != nil {
				sweeps <- fmt.Errorf("submit %d: %w", i, err)
				return
			}
			_, done, err := st.Drain()
			st.Close()
			if err != nil || done == nil {
				sweeps <- fmt.Errorf("sweep %d: done=%v err=%v", i, done, err)
				return
			}
		}
		sweeps <- nil
	}()

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if _, err := cl.Metrics(ctx); err != nil {
					errc <- fmt.Errorf("metricz: %w", err)
					return
				}
				resp, err := http.Get(cl.Base + "/metrics")
				if err != nil {
					errc <- err
					return
				}
				_, perr := obs.ParsePrometheus(resp.Body)
				resp.Body.Close()
				if perr != nil {
					errc <- fmt.Errorf("mid-sweep /metrics does not parse: %w", perr)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if err := <-sweeps; err != nil {
		t.Fatal(err)
	}
}

// GET /v1/sweeps/{id} reports live progress: counts by outcome, done
// state, and 404 for sweeps the server never ran.
func TestProgressEndpoint(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	st, err := cl.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	sweep := st.Accepted.Sweep
	if _, done, err := st.Drain(); err != nil || done == nil {
		t.Fatalf("drain: done=%v err=%v", done, err)
	}
	st.Close()

	snap, err := cl.Progress(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Sweep != sweep || snap.State != "done" {
		t.Fatalf("snapshot %+v, want sweep %s done", snap, sweep)
	}
	if snap.Cells != 3 || snap.Done != 3 {
		t.Fatalf("progress %d/%d, want 3/3", snap.Done, snap.Cells)
	}
	total := 0
	for _, n := range snap.Outcomes {
		total += n
	}
	if total != 3 || snap.Outcomes["computed"] != 3 {
		t.Fatalf("outcomes %v, want 3 computed", snap.Outcomes)
	}
	if snap.ETAMS != 0 {
		t.Fatalf("done sweep has ETA %dms", snap.ETAMS)
	}
	if snap.CellEWMAUS <= 0 {
		t.Fatalf("cell EWMA %v, want > 0 after computed cells", snap.CellEWMAUS)
	}

	if _, err := cl.Progress(ctx, "no-such-sweep"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown sweep: err=%v, want 404", err)
	}
}

// The EWMA ETA is guarded against the zero-cells-run window: while a
// running sweep has only journal serves (or nothing) behind it, the
// snapshot reports eta_unknown instead of a degenerate ETA, and the
// first sub-microsecond computed cell still seeds the EWMA exactly
// once.
func TestProgressETAUnknownWindow(t *testing.T) {
	s := &Server{prog: make(map[string]*progress)}
	p := s.progressStart("sw-eta", "rid", 10, 2)

	snap, ok := s.progressSnapshot("sw-eta")
	if !ok {
		t.Fatal("sweep not registered")
	}
	if !snap.ETAUnknown || snap.ETAMS != 0 {
		t.Fatalf("before any cell: eta_unknown=%v eta_ms=%d, want unknown", snap.ETAUnknown, snap.ETAMS)
	}

	// Journal serves complete cells but run nothing: still unknown.
	s.progressCell(p, runner.CellDone{ID: "c0", Source: runner.SourceJournal}, time.Millisecond)
	snap, _ = s.progressSnapshot("sw-eta")
	if !snap.ETAUnknown || snap.ETAMS != 0 || snap.CellEWMAUS != 0 {
		t.Fatalf("after journal serve: %+v, want eta still unknown", snap)
	}

	// A computed cell faster than 1µs: the EWMA seeds (to 0µs) and the
	// ETA becomes known — a genuine near-zero, not a fabricated one.
	s.progressCell(p, runner.CellDone{ID: "c1", Source: runner.SourceComputed, Dur: 500 * time.Nanosecond}, 2*time.Millisecond)
	snap, _ = s.progressSnapshot("sw-eta")
	if snap.ETAUnknown {
		t.Fatalf("after a computed cell the ETA must be known: %+v", snap)
	}

	// The zero first sample must not re-seed: the next cell updates via
	// the EWMA (0.2 × 100000µs = 20000µs), not first-sample semantics.
	s.progressCell(p, runner.CellDone{ID: "c2", Source: runner.SourceComputed, Dur: 100 * time.Millisecond}, 103*time.Millisecond)
	snap, _ = s.progressSnapshot("sw-eta")
	if snap.CellEWMAUS != 20000 {
		t.Fatalf("EWMA after 0µs then 100000µs = %vµs, want 20000 (re-seeded instead of smoothed?)", snap.CellEWMAUS)
	}
	if snap.ETAMS <= 0 {
		t.Fatalf("ETA = %dms, want > 0 with 7 cells remaining at 20000µs EWMA", snap.ETAMS)
	}

	// Done sweeps report neither an ETA nor unknown.
	s.progressEnd(p, nil)
	snap, _ = s.progressSnapshot("sw-eta")
	if snap.ETAUnknown || snap.ETAMS != 0 {
		t.Fatalf("done sweep: %+v, want no ETA fields", snap)
	}
}

// GET /v1/sweeps/{id}/trace exports the sweep's cells as a loadable
// Chrome trace_event document with named lanes.
func TestTraceEndpoint(t *testing.T) {
	_, cl := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	st, err := cl.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	sweep := st.Accepted.Sweep
	cells, done, err := st.Drain()
	st.Close()
	if err != nil || done == nil {
		t.Fatalf("drain: done=%v err=%v", done, err)
	}

	resp, err := http.Get(cl.Base + "/v1/sweeps/" + sweep + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %s", resp.Status)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	byName := map[string]bool{}
	lanes := 0
	for _, ev := range doc.TraceEvents {
		byName[ev.Name] = true
		if ev.Name == "thread_name" {
			lanes++
		}
	}
	if !byName["process_name"] || lanes < 2 {
		t.Fatalf("trace lacks metadata (process=%v lanes=%d):\n%+v", byName["process_name"], lanes, doc.TraceEvents)
	}
	for _, ev := range cells {
		if !byName[ev.ID] {
			t.Fatalf("trace lacks a span for cell %s", ev.ID)
		}
	}

	resp2, err := http.Get(cl.Base + "/v1/sweeps/no-such-sweep/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep trace: %s, want 404", resp2.Status)
	}
}
