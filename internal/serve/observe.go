package serve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"wlcache/internal/obs"
	"wlcache/internal/runner"
)

// Request-scoped tracing: every request gets an ID (honoring an
// inbound X-Request-Id when it is well-formed), echoed in the
// response header, carried on every NDJSON event of a sweep stream,
// and propagated via context through the runner workers — so one cell
// can be followed from HTTP ingress through the single-flight store
// to the worker that computed it, across logs, events and traces.

type ctxKey int

const requestIDKey ctxKey = 1

// withRequestID stores the request ID on a context.
func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the request ID carried by a context ("" when
// none). The sweep context handed to runner cells carries it, so even
// code running deep in a worker can tag its output.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// requestIDFor picks the request's ID: a well-formed inbound
// X-Request-Id wins, otherwise a fresh random one.
func requestIDFor(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); validRequestID(id) {
		return id
	}
	return newRequestID()
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r-0"
	}
	return hex.EncodeToString(b[:])
}

// validRequestID accepts IDs that are safe to echo into headers,
// JSON, logs and trace args verbatim.
func validRequestID(s string) bool {
	if len(s) == 0 || len(s) > 100 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return false
		}
	}
	return true
}

// The registry metric families (latencies in microseconds — the obs
// histograms are log2-bucketed over natural integer units). Counters
// derived from the /metricz snapshot are rendered separately by
// writeSnapshotProm, so each fact has exactly one home.
const (
	mHTTPRequests = "wlserve_http_requests_total" // counter {route,code}
	mHTTPLatency  = "wlserve_http_request_us"     // histogram {route,code}
	mCellLatency  = "wlserve_cell_us"             // histogram {outcome}
	mCellWait     = "wlserve_cell_wait_us"        // histogram: worker-queue wait
	mQueueDepth   = "wlserve_queue_depth"         // gauge: admission queue
	mQueueWait    = "wlserve_queue_wait_us"       // histogram: admission wait
	mJournalFsync = "wlserve_journal_fsync_us"    // histogram: append durability tax
)

// outcomeLabel maps a runner cell source onto the /metrics outcome
// vocabulary (aligned with the SweepMetrics JSON field names).
func outcomeLabel(src runner.CellSource) string {
	switch src {
	case runner.SourceJournal:
		return "from_journal"
	case runner.SourceShared:
		return "from_shared"
	case runner.SourceDedup:
		return "deduped"
	case runner.SourceComputed:
		return "computed"
	case runner.SourceFailed:
		return "failed"
	case runner.SourceSkipped:
		return "skipped"
	}
	return string(src)
}

// noteCell folds one finished cell into the latency histograms.
func (s *Server) noteCell(d runner.CellDone) {
	lbl := fmt.Sprintf("{outcome=%q}", outcomeLabel(d.Source))
	s.reg.Observe(mCellLatency+lbl, obs.DirLower, float64(d.Dur.Microseconds()))
	if d.Source != runner.SourceJournal && d.Source != runner.SourceSkipped {
		// Only cells that reached the pool have a queue wait.
		s.reg.Observe(mCellWait, obs.DirLower, float64(d.Wait.Microseconds()))
	}
}

// statusWriter captures the response status for instrumentation while
// passing Flush through — the NDJSON stream depends on it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// routeLabel collapses a request path onto its route template so the
// per-route metric families stay bounded no matter what clients send.
func routeLabel(path string) string {
	switch path {
	case "/v1/sweeps", "/healthz", "/readyz", "/metricz", "/metrics":
		return path
	}
	if strings.HasPrefix(path, "/v1/sweeps/") {
		if strings.HasSuffix(path, "/trace") {
			return "/v1/sweeps/{id}/trace"
		}
		return "/v1/sweeps/{id}"
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "/debug/pprof"
	}
	return "other"
}

// instrument wraps the mux: assign/echo the request ID, capture the
// status, and record per-route latency plus a structured log line.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := requestIDFor(r)
		w.Header().Set("X-Request-Id", rid)
		r = r.WithContext(withRequestID(r.Context(), rid))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		route := routeLabel(r.URL.Path)
		dur := time.Since(start)
		lbl := fmt.Sprintf("{route=%q,code=\"%d\"}", route, code)
		s.reg.Inc(mHTTPRequests+lbl, obs.DirNone)
		s.reg.Observe(mHTTPLatency+lbl, obs.DirLower, float64(dur.Microseconds()))
		logf := s.slog.Info
		if route != "/v1/sweeps" {
			// Probes and scrapes are high-frequency background noise.
			logf = s.slog.Debug
		}
		logf("http request",
			"request", rid, "method", r.Method, "route", route,
			"code", code, "dur_ms", float64(dur.Microseconds())/1000)
	})
}

// handleMetrics is GET /metrics: the Prometheus text rendering of the
// /metricz snapshot (counters/gauges) plus the latency histograms the
// registry accumulates. /metricz stays the JSON source of truth for
// the chaos gate's equations; this endpoint is the scrapable view.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	writeSnapshotProm(&buf, s.Metrics())
	_ = s.reg.WritePrometheus(&buf) // bytes.Buffer writes cannot fail
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.cfg.Log.Printf("serve: /metrics write: %v", err)
	}
}

// writeSnapshotProm renders the /metricz counters in the Prometheus
// text format. Base names are disjoint from the registry's histogram
// families, so concatenating the two sections keeps every # TYPE
// group contiguous.
func writeSnapshotProm(w io.Writer, m MetricsSnapshot) {
	counter := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	gauge := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
	}
	fmt.Fprintf(w, "# TYPE wlserve_sweeps_total counter\n")
	fmt.Fprintf(w, "wlserve_sweeps_total{state=\"accepted\"} %d\n", m.SweepsAccepted)
	fmt.Fprintf(w, "wlserve_sweeps_total{state=\"rejected\"} %d\n", m.SweepsRejected)
	fmt.Fprintf(w, "wlserve_sweeps_total{state=\"unavailable\"} %d\n", m.SweepsUnavailable)
	fmt.Fprintf(w, "wlserve_sweeps_total{state=\"completed\"} %d\n", m.SweepsCompleted)
	gauge("wlserve_sweeps_active", m.SweepsActive)
	gauge("wlserve_sweeps_queued", m.SweepsQueued)
	fmt.Fprintf(w, "# TYPE wlserve_cells_total counter\n")
	fmt.Fprintf(w, "wlserve_cells_total{outcome=\"computed\"} %d\n", m.CellsComputed)
	fmt.Fprintf(w, "wlserve_cells_total{outcome=\"from_journal\"} %d\n", m.CellsFromJournal)
	fmt.Fprintf(w, "wlserve_cells_total{outcome=\"from_shared\"} %d\n", m.CellsFromShared)
	fmt.Fprintf(w, "wlserve_cells_total{outcome=\"deduped\"} %d\n", m.CellsDeduped)
	fmt.Fprintf(w, "wlserve_cells_total{outcome=\"failed\"} %d\n", m.CellsFailed)
	fmt.Fprintf(w, "wlserve_cells_total{outcome=\"skipped\"} %d\n", m.CellsSkipped)
	counter("wlserve_cell_retries_total", m.CellsRetried)
	counter("wlserve_cell_panics_total", m.CellsPanicked)
	gauge("wlserve_store_loaded", m.StoreLoaded)
	gauge("wlserve_store_size", m.StoreSize)
	counter("wlserve_journal_appends_total", m.JournalAppends)
	counter("wlserve_journal_dropped_records_total", m.JournalDropped)
	counter("wlserve_journal_torn_tail_bytes_total", m.JournalTornBytes)
	counter("wlserve_journals_quarantined_total", m.JournalsQuarantined)
	draining := int64(0)
	if m.Draining {
		draining = 1
	}
	gauge("wlserve_draining", draining)
}

// progress is the server's record of one sweep's execution, fed by
// the event loop and read by GET /v1/sweeps/{id} and its /trace
// export. All fields are guarded by Server.progMu.
type progress struct {
	sweep    string
	request  string
	cells    int
	workers  int
	state    string // "running" or "done"
	started  time.Time
	finished time.Time
	done     int
	outcomes map[string]int
	// ran counts the cells behind ewmaUS (computed, shared-store waits,
	// failures). Journal serves and skips are excluded: until a cell has
	// actually run, there is no basis for an ETA and the snapshot says
	// so explicitly instead of reporting a degenerate value.
	ran int
	// ewmaUS smooths the per-cell wall time of cells that actually ran
	// — the basis of the ETA.
	ewmaUS float64
	spans  []obs.TraceEvent
	err    string
}

// ewmaAlpha weighs the newest cell at 20%: smooth enough to ride out
// one slow cell, fresh enough to track a phase change within ~10
// cells.
const ewmaAlpha = 0.2

// progressRetain bounds how many completed sweeps stay queryable;
// older ones are evicted oldest-first.
const progressRetain = 64

// maxSpansPerSweep bounds one sweep's trace export.
const maxSpansPerSweep = 20000

// The trace lanes: journal serves and skips never reach the worker
// pool and render as instants on a dedicated lane; executed cells
// spread over per-worker lanes by index.
const (
	tidServed    = 1
	tidLaneBase  = 2
	laneServed   = "served"
	lanePrefix   = "lane-"
	traceProcess = "wlserve sweep"
)

// progressStart registers a sweep run. A resubmission of the same
// sweep ID replaces the previous record: progress reflects the latest
// run of that sweep.
func (s *Server) progressStart(sweep, request string, cells, workers int) *progress {
	p := &progress{
		sweep: sweep, request: request, cells: cells, workers: workers,
		state: "running", started: time.Now(), outcomes: make(map[string]int),
	}
	s.progMu.Lock()
	s.prog[sweep] = p
	s.progMu.Unlock()
	return p
}

// progressCell folds one finished cell into the sweep's progress and
// appends its trace span. elapsed is sweep-relative time at which the
// outcome landed.
func (s *Server) progressCell(p *progress, d runner.CellDone, elapsed time.Duration) {
	s.progMu.Lock()
	defer s.progMu.Unlock()
	p.done++
	p.outcomes[outcomeLabel(d.Source)]++
	ran := d.Source == runner.SourceComputed || d.Source == runner.SourceShared ||
		d.Source == runner.SourceFailed
	if ran {
		us := float64(d.Dur.Microseconds())
		p.ran++
		if p.ran == 1 {
			// First sample seeds the EWMA. The ran counter, not a zero
			// check, decides this: a first cell faster than 1µs would
			// otherwise leave ewmaUS at 0 and re-seed on every cell.
			p.ewmaUS = us
		} else {
			p.ewmaUS = ewmaAlpha*us + (1-ewmaAlpha)*p.ewmaUS
		}
	}
	if len(p.spans) >= maxSpansPerSweep {
		return
	}
	durUS := float64(d.Dur.Microseconds())
	tsUS := float64(elapsed.Microseconds()) - durUS
	if tsUS < 0 {
		tsUS = 0
	}
	ev := obs.TraceEvent{Name: d.ID, Cat: "sweep", PID: 1, TS: tsUS}
	args := map[string]any{
		"source":  string(d.Source),
		"wait_us": d.Wait.Microseconds(),
	}
	if d.Attempts > 0 {
		args["attempts"] = d.Attempts
	}
	if d.Err != nil {
		args["error"] = d.Err.Error()
	}
	ev.Args = args
	if d.Source == runner.SourceJournal || d.Source == runner.SourceSkipped {
		ev.Ph = "i"
		ev.TID = tidServed
	} else {
		ev.Ph = "X"
		ev.Dur = durUS
		if p.workers > 0 {
			ev.TID = tidLaneBase + d.Index%p.workers
		} else {
			ev.TID = tidLaneBase
		}
	}
	p.spans = append(p.spans, ev)
}

// progressEnd marks a sweep done and evicts the oldest completed
// record past the retention bound. Eviction checks identity: a
// resubmission may have replaced the map entry with a newer run.
func (s *Server) progressEnd(p *progress, runErr error) {
	s.progMu.Lock()
	defer s.progMu.Unlock()
	p.state = "done"
	p.finished = time.Now()
	if runErr != nil {
		p.err = runErr.Error()
	}
	s.progDone = append(s.progDone, p)
	if len(s.progDone) > progressRetain {
		old := s.progDone[0]
		s.progDone = s.progDone[1:]
		if s.prog[old.sweep] == old {
			delete(s.prog, old.sweep)
		}
	}
}

// ProgressSnapshot is the GET /v1/sweeps/{id} document.
type ProgressSnapshot struct {
	Sweep   string `json:"sweep"`
	Request string `json:"request,omitempty"`
	// State is "running" or "done".
	State string `json:"state"`
	Cells int    `json:"cells"`
	Done  int    `json:"done"`
	// Outcomes counts finished cells by source (computed, from_journal,
	// from_shared, deduped, failed, skipped).
	Outcomes  map[string]int `json:"outcomes"`
	ElapsedMS int64          `json:"elapsed_ms"`
	// CellEWMAUS is the smoothed wall time of cells that actually ran.
	CellEWMAUS float64 `json:"cell_ewma_us"`
	// ETAMS estimates the remaining wall time as remaining × EWMA ÷
	// workers — an upper bound, since journal/store serves are far
	// cheaper than the EWMA. Zero when done or the ETA is unknown.
	ETAMS int64 `json:"eta_ms,omitempty"`
	// ETAUnknown is set while the sweep is running with cells remaining
	// but no cell has run yet (everything so far was served from the
	// journal or skipped): there is no per-cell sample to extrapolate
	// from, and "unknown" is the honest answer — not 0ms, not an ETA
	// seeded by a journal serve's near-zero duration.
	ETAUnknown bool   `json:"eta_unknown,omitempty"`
	Error      string `json:"error,omitempty"`
}

// progressSnapshot builds the progress document for one sweep ID.
func (s *Server) progressSnapshot(id string) (ProgressSnapshot, bool) {
	s.progMu.Lock()
	defer s.progMu.Unlock()
	p, ok := s.prog[id]
	if !ok {
		return ProgressSnapshot{}, false
	}
	snap := ProgressSnapshot{
		Sweep: p.sweep, Request: p.request, State: p.state,
		Cells: p.cells, Done: p.done, CellEWMAUS: p.ewmaUS, Error: p.err,
		Outcomes: make(map[string]int, len(p.outcomes)),
	}
	for k, v := range p.outcomes {
		snap.Outcomes[k] = v
	}
	end := p.finished
	if p.state == "running" {
		end = time.Now()
		if remaining := p.cells - p.done; remaining > 0 {
			if p.ran == 0 {
				// Zero-cells-run window: nothing has executed yet, so any
				// ETA would be fabricated.
				snap.ETAUnknown = true
			} else {
				workers := p.workers
				if workers < 1 {
					workers = 1
				}
				snap.ETAMS = int64(float64(remaining) * p.ewmaUS / float64(workers) / 1000)
			}
		}
	}
	snap.ElapsedMS = end.Sub(p.started).Milliseconds()
	return snap, true
}

// handleSweepGet is GET /v1/sweeps/{id}: live progress for a sweep the
// server is running or recently finished.
func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.progressSnapshot(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(snap); err != nil {
		s.cfg.Log.Printf("serve: progress response: %v", err)
	}
}

// handleSweepTrace is GET /v1/sweeps/{id}/trace: the sweep's per-cell
// spans as a Chrome trace_event document — the same format the
// simulator's wlobs export uses, so both load into the same tooling.
func (s *Server) handleSweepTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.progMu.Lock()
	p, ok := s.prog[id]
	var spans []obs.TraceEvent
	var workers int
	var request string
	if ok {
		spans = append(spans, p.spans...)
		workers = p.workers
		request = p.request
	}
	s.progMu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep %q", id)
		return
	}
	lanes := map[int]string{tidServed: laneServed}
	for i := 0; i < workers; i++ {
		lanes[tidLaneBase+i] = fmt.Sprintf("%s%d", lanePrefix, i)
	}
	w.Header().Set("Content-Type", "application/json")
	name := fmt.Sprintf("%s %s (request %s)", traceProcess, id, request)
	if err := obs.WriteTraceEvents(w, name, lanes, spans); err != nil {
		s.cfg.Log.Printf("serve: trace response: %v", err)
	}
}
