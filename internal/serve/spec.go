package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"wlcache/internal/expt"
	"wlcache/internal/power"
	"wlcache/internal/runner"
	"wlcache/internal/sim"
	"wlcache/internal/workload"
)

// Spec is a client's sweep request: the cross product of designs ×
// workloads × traces × parameter grid. Zero values mean the pinned
// golden defaults, so `{}` submits the committed golden matrix.
type Spec struct {
	// Designs restricts the design kinds (default: every registered
	// kind, the golden matrix population).
	Designs []string `json:"designs,omitempty"`
	// Workloads restricts the benchmarks (default: the golden pair).
	Workloads []string `json:"workloads,omitempty"`
	// Traces restricts the power traces (default: the golden trio).
	Traces []string `json:"traces,omitempty"`
	// Scale multiplies workload input sizes (default 1 = paper runs).
	Scale int `json:"scale,omitempty"`
	// Grid sweeps WL-Cache build parameters; nil means paper defaults
	// (one combination).
	Grid *Grid `json:"grid,omitempty"`
	// CellBudgetMS bounds each cell's deadline budget in milliseconds
	// (0 = server default). Cells that miss it degrade to deterministic
	// skips, never partial results.
	CellBudgetMS int64 `json:"cell_budget_ms,omitempty"`
	// Tier selects the engine fidelity: "" or "exact" for the
	// bit-exact engine, "fast" for the ε-bounded batched engine
	// (DESIGN.md §16). Deliberately NOT normalized ""→"exact": the
	// empty form keeps pre-tier sweep IDs (and their journals)
	// stable, and the tier feeds the cell fingerprint so fast cells
	// can never be resumed from exact journal entries or vice versa.
	Tier string `json:"tier,omitempty"`
}

// Grid is the parameter-grid dimension of a sweep: every listed
// maxline is crossed with every listed DQ capacity. 0 entries mean the
// paper default for that parameter.
type Grid struct {
	Maxline []int `json:"maxline,omitempty"`
	DQCap   []int `json:"dqcap,omitempty"`
}

// maxGridDim bounds each grid axis so a spec cannot explode the cell
// count through the grid alone (the total is bounded separately by
// Config.MaxCells).
const maxGridDim = 16

// normalize fills the golden defaults into empty dimensions.
func (s Spec) normalize() Spec {
	if len(s.Designs) == 0 {
		for _, k := range expt.AllKinds() {
			s.Designs = append(s.Designs, string(k))
		}
	}
	if len(s.Workloads) == 0 {
		s.Workloads = expt.GoldenWorkloads()
	}
	if len(s.Traces) == 0 {
		for _, src := range expt.GoldenSources() {
			s.Traces = append(s.Traces, string(src))
		}
	}
	if s.Scale <= 0 {
		s.Scale = 1
	}
	if s.Grid == nil {
		s.Grid = &Grid{}
	}
	if len(s.Grid.Maxline) == 0 {
		s.Grid.Maxline = []int{0}
	}
	if len(s.Grid.DQCap) == 0 {
		s.Grid.DQCap = []int{0}
	}
	return s
}

// validate rejects anything the engine cannot run, before any
// simulation or journal I/O happens.
func (s Spec) validate() error {
	kinds := make(map[string]bool)
	for _, k := range expt.AllKinds() {
		kinds[string(k)] = true
	}
	for _, d := range s.Designs {
		if !kinds[d] {
			return fmt.Errorf("unknown design kind %q", d)
		}
	}
	for _, wl := range s.Workloads {
		if _, ok := workload.ByName(wl); !ok {
			return fmt.Errorf("unknown workload %q", wl)
		}
	}
	traces := map[string]bool{string(power.None): true}
	for _, src := range power.Sources() {
		traces[string(src)] = true
	}
	for _, tr := range s.Traces {
		if !traces[tr] {
			return fmt.Errorf("unknown power trace %q", tr)
		}
	}
	if s.Scale > 64 {
		return fmt.Errorf("scale %d out of range [1,64]", s.Scale)
	}
	if len(s.Grid.Maxline) > maxGridDim || len(s.Grid.DQCap) > maxGridDim {
		return fmt.Errorf("grid axis longer than %d entries", maxGridDim)
	}
	for _, ml := range s.Grid.Maxline {
		if ml < 0 || ml > 64 {
			return fmt.Errorf("grid maxline %d out of range [0,64]", ml)
		}
	}
	for _, dq := range s.Grid.DQCap {
		if dq < 0 || dq > 64 {
			return fmt.Errorf("grid dqcap %d out of range [0,64]", dq)
		}
	}
	if s.CellBudgetMS < 0 {
		return fmt.Errorf("cell_budget_ms %d is negative", s.CellBudgetMS)
	}
	if _, err := sim.ParseTier(s.Tier); err != nil {
		return err
	}
	return nil
}

// NumCells returns the sweep's cell count without building the cells.
func (s Spec) NumCells() int {
	n := s.normalize()
	return len(n.Designs) * len(n.Workloads) * len(n.Traces) *
		len(n.Grid.Maxline) * len(n.Grid.DQCap)
}

// ID content-addresses the normalized spec under the given engine
// version: the hex SHA-256 that names the sweep and keys its wlrun/v1
// journal file. Identical resubmissions — the resume path after a
// server crash — hash to the same journal.
func (s Spec) ID(engine string) string {
	canon, err := json.Marshal(s.normalize())
	if err != nil {
		// A Spec of scalars and slices always marshals.
		panic(fmt.Sprintf("serve: spec hash: %v", err))
	}
	h := sha256.New()
	h.Write([]byte("wlserve/v1"))
	h.Write([]byte{0})
	h.Write([]byte(engine))
	h.Write([]byte{0})
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil))
}

// cells expands the normalized spec into runner cells (design-major,
// the committed golden order for default grids) plus the per-cell
// metadata streamed back to the client. Every cell is tolerated: a
// failing cell streams its error, it never aborts the sweep.
func (s Spec) cells() []plannedCell {
	n := s.normalize()
	defaultGrid := len(n.Grid.Maxline) == 1 && n.Grid.Maxline[0] == 0 &&
		len(n.Grid.DQCap) == 1 && n.Grid.DQCap[0] == 0
	cfg := sim.DefaultConfig()
	cfg.Tier, _ = sim.ParseTier(n.Tier) // validated before cells()
	var out []plannedCell
	for _, d := range n.Designs {
		for _, wl := range n.Workloads {
			for _, tr := range n.Traces {
				for _, ml := range n.Grid.Maxline {
					for _, dq := range n.Grid.DQCap {
						opts := expt.Options{Maxline: ml, DQCap: dq}
						rc := expt.RunnerCell(expt.Kind(d), opts, wl, n.Scale, power.Source(tr), cfg)
						if !defaultGrid {
							rc.ID = fmt.Sprintf("%s/ml%d/dq%d", rc.ID, ml, dq)
						}
						rc.Optional = true
						out = append(out, plannedCell{
							cell: rc,
							meta: cellMeta{Kind: d, Workload: wl, Trace: tr},
						})
					}
				}
			}
		}
	}
	return out
}

// plannedCell pairs a runner cell with the identity streamed back to
// the client.
type plannedCell struct {
	cell runner.Cell
	meta cellMeta
}

type cellMeta struct {
	Kind     string
	Workload string
	Trace    string
}
