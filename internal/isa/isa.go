// Package isa defines the contract between workload programs and the
// machine that executes them.
//
// Workloads are ordinary Go functions that perform their real
// computation (ADPCM coding, SHA-1 hashing, FFTs, ...) against a
// simulated word-addressable address space. Every architectural memory
// access and every batch of ALU work is reported through the Machine
// interface, which the simulator implements; the simulator charges
// time and energy, models the cache hierarchy, and injects power
// failures between operations.
package isa

// Op identifies the kind of a memory operation.
type Op uint8

const (
	// OpLoad is an architectural load of one 32-bit word.
	OpLoad Op = iota
	// OpStore is an architectural store of one 32-bit word.
	OpStore
)

// String returns "load" or "store".
func (o Op) String() string {
	if o == OpLoad {
		return "load"
	}
	return "store"
}

// Machine is the execution substrate a workload runs on. Addresses are
// byte addresses and must be 4-byte aligned; the word size is 32 bits.
//
// Implementations must be deterministic: the same sequence of calls
// yields the same values and the same simulated timing.
type Machine interface {
	// Load32 performs an architectural load and returns the word most
	// recently stored at addr (zero if never written).
	Load32(addr uint32) uint32
	// Store32 performs an architectural store of v at addr.
	Store32(addr uint32, v uint32)
	// Compute accounts for n ALU/branch instructions that touch no
	// memory. n must be >= 0; Compute(0) is a no-op.
	Compute(n int)
}

// WordBytes is the architectural word size in bytes.
const WordBytes = 4
