package isa

import "testing"

func TestOpString(t *testing.T) {
	if OpLoad.String() != "load" || OpStore.String() != "store" {
		t.Fatal("op names wrong")
	}
}

func TestWordBytes(t *testing.T) {
	if WordBytes != 4 {
		t.Fatal("the architecture is 32-bit")
	}
}
